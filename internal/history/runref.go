package history

import (
	"fmt"
	"strings"
)

// ParseRunRef parses the VERSION:RUNID run reference the CLI tools and
// the wire API use to name one stored execution of an application
// (pccompare -a/-b, pcextract -map-to, pcquery -ref, and the pcd run
// endpoints). The version may be empty (":run1" names a versionless
// record), the run id may not; a reference without a colon is invalid —
// requiring the separator keeps bare run ids from silently resolving as
// versionless records when the caller forgot the version.
func ParseRunRef(ref string) (version, runID string, err error) {
	version, runID, ok := strings.Cut(ref, ":")
	if !ok {
		return "", "", fmt.Errorf("history: bad run reference %q (want VERSION:RUNID)", ref)
	}
	if runID == "" {
		return "", "", fmt.Errorf("history: bad run reference %q (empty run id)", ref)
	}
	return version, runID, nil
}

// ParseRunKey is ParseRunRef with the application attached, yielding a
// complete store key.
func ParseRunKey(app, ref string) (RecordKey, error) {
	version, runID, err := ParseRunRef(ref)
	if err != nil {
		return RecordKey{}, err
	}
	if app == "" {
		return RecordKey{}, fmt.Errorf("history: run reference %q needs an application name", ref)
	}
	return RecordKey{App: app, Version: version, RunID: runID}, nil
}

// Ref renders the key's VERSION:RUNID reference (the inverse of
// ParseRunRef; the application travels separately).
func (k RecordKey) Ref() string { return k.Version + ":" + k.RunID }
