package history

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// walDirOf is the journal directory of a store rooted at dir.
func walDirOf(dir string) string { return filepath.Join(dir, WALDirName) }

// openDurable opens (creating) a WAL-enabled store for tests.
func openDurable(t *testing.T, dir string, o DurableOptions) *Store {
	t.Helper()
	o.Create = true
	o.WAL = true
	st, err := OpenStoreDurable(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestParseSyncPolicy(t *testing.T) {
	for _, s := range []string{"always", "interval", "none"} {
		p, err := ParseSyncPolicy(s)
		if err != nil || string(p) != s {
			t.Errorf("ParseSyncPolicy(%q) = %q, %v", s, p, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("ParseSyncPolicy accepted an unknown policy")
	}
}

// TestStoreDirSeesThroughWrappers: Dir must report the filesystem
// directory even when the backend is wrapped (fault injection) — the
// session journal and quarantine paths pcd derives from it must land
// inside the store, not in the daemon's working directory.
func TestStoreDirSeesThroughWrappers(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStoreDurable(dir, DurableOptions{
		Create: true, WAL: true,
		Wrap: func(b Backend) Backend { return NewFaultBackend(b, FaultConfig{Seed: 1}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.Dir(); got != dir {
		t.Fatalf("Dir() through a FaultBackend = %q, want %q", got, dir)
	}
}

// TestWALAppendReadRoundTrip frames entries through a journal and reads
// them back byte-for-byte, in order.
func TestWALAppendReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := StartWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []WALEntry{
		{Op: walOpPut, App: "a", Version: "v", RunID: "r1", Data: []byte(`{"x":1}`)},
		{Op: walOpDelete, App: "a", Version: "v", RunID: "r1"},
		{Op: walOpPut, App: "b", RunID: "r2", Data: []byte(`{"y":2}`)},
	}
	for _, e := range want {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, rep, err := ReadWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TornTail || len(rep.Corrupt) != 0 {
		t.Fatalf("clean journal read as damaged: %+v", rep)
	}
	if rep.Segments != 1 || rep.Entries != len(want) {
		t.Errorf("scan report = %+v, want 1 segment, %d entries", rep, len(want))
	}
	if len(got) != len(want) {
		t.Fatalf("read %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Op != want[i].Op || got[i].Key() != want[i].Key() ||
			!bytes.Equal(got[i].Data, want[i].Data) {
			t.Errorf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	stats := w.Stats()
	if stats.Appends != 3 || stats.Syncs != 3 {
		t.Errorf("SyncAlways stats = %+v, want 3 appends, 3 syncs", stats)
	}
}

// TestWALMissingDirIsEmptyJournal: a store written before the WAL existed
// has no wal/ directory, and that must read as an empty journal.
func TestWALMissingDirIsEmptyJournal(t *testing.T) {
	entries, rep, err := ReadWAL(filepath.Join(t.TempDir(), "nope"))
	if err != nil || len(entries) != 0 || rep.Segments != 0 {
		t.Fatalf("ReadWAL(missing) = %v, %+v, %v; want empty journal", entries, rep, err)
	}
}

// TestWALTornTail truncates the final frame mid-payload — the normal
// residue of a crash mid-append. Earlier entries stay readable and the
// report flags the tail, not corruption.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := StartWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(WALEntry{Op: walOpDelete, App: "a", RunID: fmt.Sprintf("r%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "00000001.wal")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	entries, rep, err := ReadWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TornTail {
		t.Error("truncated final frame not reported as torn tail")
	}
	if len(rep.Corrupt) != 0 {
		t.Errorf("torn tail misreported as corruption: %v", rep.Corrupt)
	}
	if len(entries) != 2 {
		t.Errorf("read %d entries before the torn frame, want 2", len(entries))
	}
}

// TestWALCorruptMidSegment flips a byte in a non-final frame: that is
// real corruption, reported as such, and reading that segment stops
// there.
func TestWALCorruptMidSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := StartWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(WALEntry{Op: walOpDelete, App: "a", RunID: "r0"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(WALEntry{Op: walOpDelete, App: "a", RunID: "r1"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Second segment so the damage is not in the journal's tail segment.
	if err := os.WriteFile(filepath.Join(dir, "00000002.wal"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "00000001.wal")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xff // inside the first frame's payload
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	entries, rep, err := ReadWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corrupt) != 1 || !strings.Contains(rep.Corrupt[0], "00000001.wal") {
		t.Errorf("corrupt frames = %v, want one in segment 1", rep.Corrupt)
	}
	if rep.TornTail {
		t.Error("mid-journal corruption misreported as torn tail")
	}
	if len(entries) != 0 {
		t.Errorf("read %d entries from the corrupted segment, want 0", len(entries))
	}
}

// TestWALRotationCompacts drives the journal past its segment size many
// times and proves rotation discards fully-applied segments instead of
// retaining the whole history.
func TestWALRotationCompacts(t *testing.T) {
	dir := t.TempDir()
	w, err := StartWAL(dir, WALOptions{SegmentBytes: 256, Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		e := WALEntry{Op: walOpPut, App: "app", RunID: fmt.Sprintf("r%03d", i),
			Data: []byte(`{"pad":"` + strings.Repeat("x", 64) + `"}`)}
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	stats := w.Stats()
	if stats.Rotations == 0 {
		t.Fatal("journal never rotated at a 256-byte segment size")
	}
	segs, err := walSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Errorf("%d segments on disk after compacting rotations, want 1: %v", len(segs), segs)
	}
	if stats.Segments != len(segs) {
		t.Errorf("stats report %d segments, disk has %d", stats.Segments, len(segs))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALUnsafeCompactRetainsSegments: once a compensation could not be
// healed, rotation must stop discarding old segments — replay at next
// open needs them.
func TestWALUnsafeCompactRetainsSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := StartWAL(dir, WALOptions{SegmentBytes: 256, Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	w.markUnsafe()
	for i := 0; i < 50; i++ {
		e := WALEntry{Op: walOpPut, App: "app", RunID: fmt.Sprintf("r%03d", i),
			Data: []byte(`{"pad":"` + strings.Repeat("x", 64) + `"}`)}
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := walSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Errorf("unsafe journal kept %d segments, want all rotated ones retained", len(segs))
	}
}

// TestWALSyncPolicies checks the fsync cadence each policy promises.
func TestWALSyncPolicies(t *testing.T) {
	append3 := func(w *WAL) {
		t.Helper()
		for i := 0; i < 3; i++ {
			if err := w.Append(WALEntry{Op: walOpDelete, App: "a", RunID: fmt.Sprintf("r%d", i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	w, err := StartWAL(t.TempDir(), WALOptions{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	append3(w)
	if got := w.Stats().Syncs; got != 0 {
		t.Errorf("SyncNone fsynced %d times, want 0", got)
	}
	w.Close()

	w, err = StartWAL(t.TempDir(), WALOptions{Sync: SyncIntervalPolicy, SyncEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	append3(w)
	if got := w.Stats().Syncs; got > 1 {
		t.Errorf("SyncIntervalPolicy(1h) fsynced %d times across 3 appends, want at most 1", got)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().Syncs; got == 0 {
		t.Error("explicit Sync did not fsync a dirty journal")
	}
	w.Close()
}

// TestWALFoldLastWins: the fold resolves each key to its final entry.
func TestWALFoldLastWins(t *testing.T) {
	fold := WALFold([]WALEntry{
		{Op: walOpPut, App: "a", RunID: "r1", Data: []byte(`1`)},
		{Op: walOpPut, App: "a", RunID: "r2", Data: []byte(`2`)},
		{Op: walOpPut, App: "a", RunID: "r1", Data: []byte(`3`)},
		{Op: walOpDelete, App: "a", RunID: "r2"},
	})
	if len(fold) != 2 {
		t.Fatalf("fold has %d keys, want 2", len(fold))
	}
	if e := fold[RecordKey{App: "a", RunID: "r1"}]; string(e.Data) != `3` {
		t.Errorf("r1 folded to %s, want the last put", e.Data)
	}
	if e := fold[RecordKey{App: "a", RunID: "r2"}]; e.Op != walOpDelete {
		t.Errorf("r2 folded to %q, want the delete", e.Op)
	}
}

// TestReplayWALOnlyWhereDiskDiffers: entries the record files already
// reflect are not rewritten.
func TestReplayWALOnlyWhereDiskDiffers(t *testing.T) {
	b := NewMemBackend()
	k1 := RecordKey{App: "a", RunID: "r1"}
	k2 := RecordKey{App: "a", RunID: "r2"}
	k3 := RecordKey{App: "a", RunID: "r3"}
	if err := b.Put(k1, []byte(`{"same":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(k3, []byte(`{"doomed":1}`)); err != nil {
		t.Fatal(err)
	}
	applied, err := replayWAL(b, []WALEntry{
		{Op: walOpPut, App: "a", RunID: "r1", Data: []byte(`{"same":1}`)}, // already there
		{Op: walOpPut, App: "a", RunID: "r2", Data: []byte(`{"new":1}`)},  // missing on disk
		{Op: walOpDelete, App: "a", RunID: "r3"},                          // still on disk
		{Op: walOpDelete, App: "a", RunID: "r4"},                          // already gone
	})
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 {
		t.Errorf("replay applied %d entries, want 2 (the missing put and the pending delete)", applied)
	}
	if data, err := b.Get(k2); err != nil || string(data) != `{"new":1}` {
		t.Errorf("replayed put missing: %s, %v", data, err)
	}
	if _, err := b.Get(k3); !errors.Is(err, os.ErrNotExist) {
		t.Error("replayed delete did not remove the record")
	}
}

// TestDurableStoreCrashLosesNothing is the WAL's core promise: after
// acked Saves and a Delete, wipe the record files behind the store's
// back (a maximally torn crash) and reopen — the journal replays every
// acknowledged mutation and the recovery report says so.
func TestDurableStoreCrashLosesNothing(t *testing.T) {
	dir := t.TempDir()
	st := openDurable(t, dir, DurableOptions{})
	for _, id := range []string{"r1", "r2", "r3"} {
		if err := st.Save(sampleRecord(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Delete("poisson", "A", "r2"); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close, and the record files vanish out from under it.
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".json") {
			if err := os.Remove(filepath.Join(dir, de.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}

	st2, err := OpenStoreDurable(dir, DurableOptions{WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := st2.Recovery()
	if rep == nil || rep.WAL == nil {
		t.Fatal("durable open produced no WAL recovery report")
	}
	if rep.WAL.Replayed != 2 {
		t.Errorf("replayed %d entries, want 2 (r1 and r3; r2 was deleted)", rep.WAL.Replayed)
	}
	if rep.WAL.TornTail || len(rep.WAL.Corrupt) != 0 {
		t.Errorf("clean journal reported damaged: %+v", rep.WAL)
	}
	if st2.Len() != 2 {
		t.Fatalf("store holds %d records after replay, want 2", st2.Len())
	}
	for _, id := range []string{"r1", "r3"} {
		rec, err := st2.Load("poisson", "A", id)
		if err != nil {
			t.Fatalf("load %s after replay: %v", id, err)
		}
		want, _ := json.MarshalIndent(sampleRecord(id), "", "  ")
		got, _ := json.MarshalIndent(rec, "", "  ")
		if !bytes.Equal(got, want) {
			t.Errorf("replayed %s differs from the acknowledged record", id)
		}
	}
	if _, err := st2.Load("poisson", "A", "r2"); !errors.Is(err, os.ErrNotExist) {
		t.Error("deleted record resurrected by replay")
	}
}

// TestDurableStoreTornRecordHealed: a crash can tear the record file of
// an already-acked Save (rename published, data page lost). Replay must
// restore the acked bytes rather than quarantine the file.
func TestDurableStoreTornRecordHealed(t *testing.T) {
	dir := t.TempDir()
	st := openDurable(t, dir, DurableOptions{})
	if err := st.Save(sampleRecord("r1")); err != nil {
		t.Fatal(err)
	}
	// Tear the record file in place.
	name := fileName(RecordKey{App: "poisson", Version: "A", RunID: "r1"})
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStoreDurable(dir, DurableOptions{WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := st2.Recovery()
	if rep.WAL == nil || rep.WAL.Replayed != 1 {
		t.Fatalf("torn acked record not replayed: %+v", rep.WAL)
	}
	if len(rep.Quarantined) != 0 {
		t.Errorf("journal-repairable record was quarantined: %v", rep.Quarantined)
	}
	rec, err := st2.Load("poisson", "A", "r1")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.MarshalIndent(rec, "", "  ")
	if !bytes.Equal(got, data) {
		t.Error("healed record differs from the acknowledged bytes")
	}
}

// TestDurableStoreCompensation: a Put the backend rejects must not win
// the replay fold — the pre-image (or absence) is what the caller last
// had acknowledged.
func TestDurableStoreCompensation(t *testing.T) {
	dir := t.TempDir()
	st := openDurable(t, dir, DurableOptions{})
	if err := st.Save(sampleRecord("r1")); err != nil {
		t.Fatal(err)
	}
	ackedBytes, err := os.ReadFile(filepath.Join(dir, fileName(RecordKey{App: "poisson", Version: "A", RunID: "r1"})))
	if err != nil {
		t.Fatal(err)
	}
	fb := st.Backend().(*FSBackend)
	fb.renameHook = func(_, _ string) error { return fmt.Errorf("injected rename failure") }
	changed := sampleRecord("r1")
	changed.Duration = 999
	if err := st.Save(changed); err == nil {
		t.Fatal("Save succeeded through a failing rename")
	}
	// A brand-new key failing is compensated with a delete entry.
	if err := st.Save(sampleRecord("r9")); err == nil {
		t.Fatal("Save succeeded through a failing rename")
	}
	fb.renameHook = nil

	// Replay the journal as the next open would: the failed writes' intent
	// must not surface.
	entries, _, err := ReadWAL(walDirOf(dir))
	if err != nil {
		t.Fatal(err)
	}
	fold := WALFold(entries)
	e := fold[RecordKey{App: "poisson", Version: "A", RunID: "r1"}]
	if e.Op != walOpPut || !bytes.Equal(e.Data, ackedBytes) {
		t.Errorf("r1 folds to %q (%d bytes), want the acked pre-image put", e.Op, len(e.Data))
	}
	if e := fold[RecordKey{App: "poisson", Version: "A", RunID: "r9"}]; e.Op != walOpDelete {
		t.Errorf("never-acked r9 folds to %q, want delete", e.Op)
	}
	// And on disk, the acked state survived the failed overwrite.
	cur, err := os.ReadFile(filepath.Join(dir, fileName(RecordKey{App: "poisson", Version: "A", RunID: "r1"})))
	if err != nil || !bytes.Equal(cur, ackedBytes) {
		t.Error("acked record bytes changed despite the failed Save")
	}
}

// TestDurableStorePreWALLayoutOpens: forward compatibility — a store
// written before this PR (no wal/ directory) opens durably with an empty
// journal, and a durable store's wal/ and sessions/ subdirectories are
// invisible to the pre-WAL open path.
func TestDurableStorePreWALLayoutOpens(t *testing.T) {
	dir := t.TempDir()
	st0, err := NewStore(dir) // pre-PR-5 writer: no journal
	if err != nil {
		t.Fatal(err)
	}
	if err := st0.Save(sampleRecord("r1")); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStoreDurable(dir, DurableOptions{WAL: true})
	if err != nil {
		t.Fatalf("pre-WAL layout failed the durable open: %v", err)
	}
	if rep := st.Recovery(); !rep.WAL.Empty() {
		t.Errorf("empty-journal open reported WAL work: %+v", rep.WAL)
	}
	if st.Len() != 1 {
		t.Errorf("pre-WAL records lost: %d indexed, want 1", st.Len())
	}
	if err := st.Save(sampleRecord("r2")); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// And backwards: the old open path must not trip over wal/.
	stOld, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("pre-WAL open path rejected a durable store: %v", err)
	}
	if stOld.Len() != 2 {
		t.Errorf("old open path sees %d records, want 2", stOld.Len())
	}
	if len(stOld.Recovery().Quarantined) != 0 {
		t.Errorf("old open path quarantined journal files: %v", stOld.Recovery().Quarantined)
	}
}

// TestFSBackendPutFsyncsDirAfterRename is the satellite regression test:
// the directory fsync happens after (and only after) the rename commits,
// and a failing fsync surfaces as a Put error.
func TestFSBackendPutFsyncsDirAfterRename(t *testing.T) {
	dir := t.TempDir()
	b, err := NewFSBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	b.renameHook = func(oldpath, newpath string) error {
		order = append(order, "rename")
		return os.Rename(oldpath, newpath)
	}
	b.syncHook = func(d string) error {
		if d == dir {
			order = append(order, "syncdir")
		}
		return syncDir(d)
	}
	key := RecordKey{App: "a", RunID: "r1"}
	if err := b.Put(key, []byte(`{"app":"a","run_id":"r1"}`)); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "rename" || order[1] != "syncdir" {
		t.Fatalf("Put ordering = %v, want rename then directory fsync", order)
	}
	// A failed rename must not fsync (nothing committed).
	order = nil
	b.renameHook = func(_, _ string) error { return fmt.Errorf("injected") }
	if err := b.Put(key, []byte(`{}`)); err == nil {
		t.Fatal("Put succeeded through a failing rename")
	}
	for _, step := range order {
		if step == "syncdir" {
			t.Error("directory fsynced for an uncommitted rename")
		}
	}
	// A failing fsync fails the Put: the write is not durable.
	b.renameHook = nil
	b.syncHook = func(string) error { return fmt.Errorf("injected fsync failure") }
	if err := b.Put(key, []byte(`{"app":"a","run_id":"r1"}`)); err == nil ||
		!strings.Contains(err.Error(), "sync dir") {
		t.Errorf("Put with failing dir fsync returned %v, want a sync dir error", err)
	}
}

// TestFSBackendPutFsyncsFileBeforeRename: the record's data reaches
// stable storage before the rename can publish it. Without that order a
// power loss can make the rename durable while the file's blocks are
// not, leaving a zero-length or torn record the WAL was already trimmed
// of.
func TestFSBackendPutFsyncsFileBeforeRename(t *testing.T) {
	dir := t.TempDir()
	b, err := NewFSBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	b.fileSyncHook = func(f *os.File) error {
		order = append(order, "syncfile")
		return f.Sync()
	}
	b.renameHook = func(oldpath, newpath string) error {
		order = append(order, "rename")
		return os.Rename(oldpath, newpath)
	}
	key := RecordKey{App: "a", RunID: "r1"}
	if err := b.Put(key, []byte(`{"app":"a","run_id":"r1"}`)); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "syncfile" || order[1] != "rename" {
		t.Fatalf("Put ordering = %v, want the data fsync before the rename", order)
	}
	// A failing data fsync fails the Put before anything is published,
	// and the temp file does not survive.
	order = nil
	b.fileSyncHook = func(*os.File) error { return fmt.Errorf("injected data fsync failure") }
	if err := b.Put(key, []byte(`{}`)); err == nil {
		t.Fatal("Put succeeded through a failing data fsync")
	}
	for _, step := range order {
		if step == "rename" {
			t.Error("rename ran after the data fsync failed")
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".put-") {
			t.Errorf("temp file %s survived a failed Put", e.Name())
		}
	}
}

// TestWALAppendTornFrameRepaired: a failed (partial) frame write must
// not leave garbage mid-segment for later frames to follow — replay
// stops at the first bad frame, so every later acknowledged entry would
// be invisible. After a torn append the segment is restored to its last
// good frame and subsequent appends replay cleanly.
func TestWALAppendTornFrameRepaired(t *testing.T) {
	dir := filepath.Join(t.TempDir(), WALDirName)
	w, err := StartWAL(dir, WALOptions{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(WALEntry{Op: walOpPut, App: "a", RunID: "r1", Data: []byte("one")}); err != nil {
		t.Fatal(err)
	}
	// Tear the next frame: half its bytes land, then the write fails.
	w.writeHook = func(f *os.File, frame []byte) (int, error) {
		n, _ := f.Write(frame[:len(frame)/2])
		return n, fmt.Errorf("injected torn write")
	}
	if err := w.Append(WALEntry{Op: walOpPut, App: "a", RunID: "r2", Data: []byte("two")}); err == nil {
		t.Fatal("Append succeeded through a torn write")
	}
	w.writeHook = nil
	// The next append must land where the torn frame began, not after
	// its garbage.
	if err := w.Append(WALEntry{Op: walOpPut, App: "a", RunID: "r3", Data: []byte("three")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	entries, rep, err := ReadWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TornTail || len(rep.Corrupt) != 0 {
		t.Fatalf("journal not clean after torn-append repair: %+v", rep)
	}
	if len(entries) != 2 || entries[0].RunID != "r1" || entries[1].RunID != "r3" {
		t.Fatalf("replayable entries = %+v, want the two acknowledged appends [r1 r3]", entries)
	}
}

// TestFSBackendQuarantineFsyncsDirs: the quarantine move fsyncs both the
// quarantine directory and the store directory.
func TestFSBackendQuarantineFsyncsDirs(t *testing.T) {
	dir := t.TempDir()
	b, err := NewFSBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	var synced []string
	b.syncHook = func(d string) error {
		synced = append(synced, d)
		return syncDir(d)
	}
	if err := b.Quarantine("bad.json", "testing"); err != nil {
		t.Fatal(err)
	}
	want := []string{filepath.Join(dir, QuarantineDir), dir}
	if len(synced) != 2 || synced[0] != want[0] || synced[1] != want[1] {
		t.Fatalf("quarantine fsynced %v, want %v", synced, want)
	}
}

// TestStoreDeleteLegacyNamedRecord is the satellite fix: a record that
// exists only under its pre-escaping file name must be deletable through
// the same fallback Get reads through.
func TestStoreDeleteLegacyNamedRecord(t *testing.T) {
	dir := t.TempDir()
	rec := sampleRecord("r1")
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	// poisson-A-r1.json: the legacy name (no escaping) of this key.
	legacy := "poisson-A-r1.json"
	if err := os.WriteFile(filepath.Join(dir, legacy), data, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("legacy record not indexed: %d records", st.Len())
	}
	if err := st.Delete("poisson", "A", "r1"); err != nil {
		t.Fatalf("Delete of legacy-named-only record failed: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, legacy)); !errors.Is(err, os.ErrNotExist) {
		t.Error("legacy file survived Delete")
	}
	if _, err := st.Load("poisson", "A", "r1"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("Load after legacy Delete = %v, want not-exist", err)
	}
	// Deleting a key with no file at all is a miss.
	if err := st.Delete("poisson", "A", "r1"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("second Delete = %v, want not-exist", err)
	}
}

// TestFSBackendDeleteLegacyCollision: the colliding key's legacy file —
// app "poisson-A" run "r1" vs app "poisson" version "A" run "r1" share
// poisson-A-r1.json — must survive a Delete of the other key, and an
// unparseable squatter on the legacy name is quarantined.
func TestFSBackendDeleteLegacyCollision(t *testing.T) {
	dir := t.TempDir()
	b, err := NewFSBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	other := []byte(`{"app":"poisson-A","run_id":"r1"}`)
	if err := os.WriteFile(filepath.Join(dir, "poisson-A-r1.json"), other, 0o644); err != nil {
		t.Fatal(err)
	}
	// Delete of (poisson, A, r1): nothing of that key exists; the other
	// key's file under the colliding legacy name must be left alone.
	err = b.Delete(RecordKey{App: "poisson", Version: "A", RunID: "r1"})
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("Delete = %v, want not-exist", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "poisson-A-r1.json")); err != nil {
		t.Error("colliding key's legacy file removed by another key's Delete")
	}
	// An unparseable file squatting on a key's legacy name is
	// quarantined. Key (pois-son, "", r2) has a distinct escaped name
	// (pois%2Dson--r2.json), so the legacy fallback is the path taken.
	if err := os.WriteFile(filepath.Join(dir, "pois-son-r2.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = b.Delete(RecordKey{App: "pois-son", RunID: "r2"})
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("Delete = %v, want not-exist", err)
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir, "pois-son-r2.json")); err != nil {
		t.Error("unparseable legacy squatter not quarantined by Delete")
	}
}

// TestDurableStoreDeterminism: the WAL must not perturb what the store
// serves — saving and loading through a durable store returns the same
// records as a plain one.
func TestDurableStoreDeterminism(t *testing.T) {
	plainDir, durDir := t.TempDir(), t.TempDir()
	plain, err := NewStore(plainDir)
	if err != nil {
		t.Fatal(err)
	}
	dur := openDurable(t, durDir, DurableOptions{})
	for _, id := range []string{"r1", "r2"} {
		if err := plain.Save(sampleRecord(id)); err != nil {
			t.Fatal(err)
		}
		if err := dur.Save(sampleRecord(id)); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"r1", "r2"} {
		name := fileName(RecordKey{App: "poisson", Version: "A", RunID: id})
		a, err := os.ReadFile(filepath.Join(plainDir, name))
		if err != nil {
			t.Fatal(err)
		}
		c, err := os.ReadFile(filepath.Join(durDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, c) {
			t.Errorf("record %s bytes differ between plain and durable stores", id)
		}
	}
}
