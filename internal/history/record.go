// Package history implements the multi-execution performance data store
// the paper's directive harvesting draws on: per-run records of the
// program's resource hierarchies, the Performance Consultant's Search
// History Graph results, and a raw per-resource usage summary, saved as
// JSON and reloadable across tool sessions.
package history

import (
	"fmt"
	"sort"

	"repro/internal/consultant"
	"repro/internal/resource"
)

// NodeResult is the serializable outcome of one (hypothesis : focus) pair
// from a Performance Consultant run.
type NodeResult struct {
	Hyp         string  `json:"hyp"`
	Focus       string  `json:"focus"`
	State       string  `json:"state"` // pending|testing|true|false|pruned
	Value       float64 `json:"value"`
	Threshold   float64 `json:"threshold"`
	ConcludedAt float64 `json:"concluded_at"`
	Priority    string  `json:"priority"`
	Persistent  bool    `json:"persistent,omitempty"`
}

// RunRecord captures everything harvested from one program execution.
type RunRecord struct {
	App     string `json:"app"`
	Version string `json:"version"`
	RunID   string `json:"run_id"`

	// Duration is the diagnosed execution's virtual length in seconds.
	Duration float64 `json:"duration"`
	// Resources lists every resource path per hierarchy name.
	Resources map[string][]string `json:"resources"`
	// ProcNodes maps process name to the machine node it ran on.
	ProcNodes map[string]string `json:"proc_nodes"`
	// Results holds the SHG outcomes.
	Results []NodeResult `json:"results"`
	// Usage maps resource path to the fraction of total execution time
	// attributed to it (raw monitoring data, independent of the SHG).
	Usage map[string]float64 `json:"usage"`

	PairsTested int `json:"pairs_tested"`
	TrueCount   int `json:"true_count"`
}

// FromRun builds a record from a finished (or stopped) consultant search.
func FromRun(appName, version, runID string, space *resource.Space,
	c *consultant.Consultant, usage map[string]float64, procNodes map[string]string,
	duration float64) *RunRecord {

	rec := &RunRecord{
		App:       appName,
		Version:   version,
		RunID:     runID,
		Duration:  duration,
		Resources: make(map[string][]string),
		ProcNodes: make(map[string]string, len(procNodes)),
		Usage:     make(map[string]float64, len(usage)),
	}
	for _, h := range space.Hierarchies() {
		rec.Resources[h.Name()] = h.Paths()
	}
	for k, v := range procNodes {
		rec.ProcNodes[k] = v
	}
	for k, v := range usage {
		rec.Usage[k] = v
	}
	for _, n := range c.SHG().Nodes() {
		if n.Hyp.Name == consultant.TopLevelHypothesis {
			continue
		}
		nr := NodeResult{
			Hyp:         n.Hyp.Name,
			Focus:       n.Focus.Name(),
			State:       n.State.String(),
			Value:       n.Value,
			Threshold:   n.Threshold,
			ConcludedAt: n.ConcludedAt,
			Priority:    n.Priority.String(),
			Persistent:  n.Persistent,
		}
		rec.Results = append(rec.Results, nr)
		if n.State == consultant.StateTrue {
			rec.TrueCount++
		}
	}
	rec.PairsTested = c.TestedPairs()
	return rec
}

// Validate checks the record for internal consistency.
func (r *RunRecord) Validate() error {
	if r.App == "" {
		return fmt.Errorf("history: record missing app name")
	}
	if r.RunID == "" {
		return fmt.Errorf("history: record missing run id")
	}
	trues := 0
	for i, nr := range r.Results {
		switch nr.State {
		case "pending", "testing", "true", "false", "pruned":
		default:
			return fmt.Errorf("history: result %d has unknown state %q", i, nr.State)
		}
		if nr.State == "true" {
			trues++
		}
	}
	if trues != r.TrueCount {
		return fmt.Errorf("history: TrueCount=%d but %d true results", r.TrueCount, trues)
	}
	return nil
}

// TrueResults returns the results concluded true, by conclusion time.
func (r *RunRecord) TrueResults() []NodeResult {
	var out []NodeResult
	for _, nr := range r.Results {
		if nr.State == "true" {
			out = append(out, nr)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].ConcludedAt < out[j].ConcludedAt })
	return out
}

// FalseResults returns the results concluded false.
func (r *RunRecord) FalseResults() []NodeResult {
	var out []NodeResult
	for _, nr := range r.Results {
		if nr.State == "false" {
			out = append(out, nr)
		}
	}
	return out
}

// MachineRedundant reports whether processes and machine nodes map
// one-to-one (the MPI-1 static process model), making the Machine
// hierarchy redundant with the Process hierarchy.
func (r *RunRecord) MachineRedundant() bool {
	if len(r.ProcNodes) == 0 {
		return false
	}
	seen := make(map[string]int)
	for _, node := range r.ProcNodes {
		seen[node]++
		if seen[node] > 1 {
			return false
		}
	}
	return true
}
