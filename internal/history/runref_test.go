package history

import (
	"path/filepath"
	"testing"
)

func TestParseRunRef(t *testing.T) {
	cases := []struct {
		ref            string
		version, runID string
		wantErr        bool
	}{
		{ref: "A:run1", version: "A", runID: "run1"},
		{ref: ":run1", version: "", runID: "run1"},
		{ref: "v2:base:extra", version: "v2", runID: "base:extra"},
		{ref: "run1", wantErr: true},
		{ref: "", wantErr: true},
		{ref: "A:", wantErr: true},
	}
	for _, c := range cases {
		version, runID, err := ParseRunRef(c.ref)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseRunRef(%q): want error, got (%q, %q)", c.ref, version, runID)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseRunRef(%q): %v", c.ref, err)
			continue
		}
		if version != c.version || runID != c.runID {
			t.Errorf("ParseRunRef(%q) = (%q, %q), want (%q, %q)", c.ref, version, runID, c.version, c.runID)
		}
	}
}

func TestParseRunKey(t *testing.T) {
	key, err := ParseRunKey("poisson", "B:base")
	if err != nil {
		t.Fatal(err)
	}
	want := RecordKey{App: "poisson", Version: "B", RunID: "base"}
	if key != want {
		t.Fatalf("ParseRunKey = %+v, want %+v", key, want)
	}
	if key.Ref() != "B:base" {
		t.Fatalf("Ref() = %q, want B:base", key.Ref())
	}
	if _, err := ParseRunKey("", "B:base"); err == nil {
		t.Fatal("ParseRunKey with empty app: want error")
	}
	if _, err := ParseRunKey("poisson", "base"); err == nil {
		t.Fatal("ParseRunKey without colon: want error")
	}
}

func TestOpenStoreMissingDir(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no-such-store")
	if _, err := OpenStore(missing); err == nil {
		t.Fatal("OpenStore on a missing directory: want error, got nil")
	}
	// NewStore keeps its create-if-needed contract.
	st, err := NewStore(missing)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	if st.Len() != 0 {
		t.Fatalf("fresh store Len = %d, want 0", st.Len())
	}
	// Once created, OpenStore succeeds.
	if _, err := OpenStore(missing); err != nil {
		t.Fatalf("OpenStore after create: %v", err)
	}
}
