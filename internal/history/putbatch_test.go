package history

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestPutBatchStore covers the single-store batch path: all-in input
// order, whole-batch validation before any write, and the saved count
// on partial failure.
func TestPutBatchStore(t *testing.T) {
	st := NewMemStore()
	batch := []*RunRecord{
		shardSample("poisson", "A", "r1", 0.5),
		shardSample("poisson", "B", "r1", 0.4),
		shardSample("ocean", "", "r1", 0.3),
	}
	n, err := st.PutBatch(batch)
	if err != nil || n != 3 {
		t.Fatalf("PutBatch = %d, %v", n, err)
	}
	for _, rec := range batch {
		if _, err := st.Load(rec.App, rec.Version, rec.RunID); err != nil {
			t.Errorf("load %s: %v", rec.Key(), err)
		}
	}
	// A malformed record anywhere fails the whole batch before a write.
	bad := shardSample("poisson", "C", "r2", 0.1)
	bad.TrueCount = 99
	n, err = st.PutBatch([]*RunRecord{shardSample("poisson", "C", "r1", 0.1), bad})
	if err == nil || n != 0 {
		t.Fatalf("invalid batch: n=%d err=%v", n, err)
	}
	if _, err := st.Load("poisson", "C", "r1"); err == nil {
		t.Error("invalid batch left a partial write")
	}
	if n, err := st.PutBatch([]*RunRecord{nil}); err == nil || n != 0 {
		t.Errorf("nil record batch: n=%d err=%v", n, err)
	}
	if n, err := st.PutBatch(nil); err != nil || n != 0 {
		t.Errorf("empty batch: n=%d err=%v", n, err)
	}
}

// TestPutBatchStorePartialFailure injects a backend fault mid-batch and
// checks the count reflects what actually landed.
func TestPutBatchStorePartialFailure(t *testing.T) {
	fb := NewFaultBackend(NewMemBackend(), FaultConfig{})
	st, err := NewStoreWith(fb)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.PutBatch([]*RunRecord{shardSample("a", "", "r1", 0.5)}); err != nil {
		t.Fatal(err)
	}
	fb.SetConfig(FaultConfig{ErrRate: 1})
	n, err := st.PutBatch([]*RunRecord{shardSample("a", "", "r2", 0.5), shardSample("a", "", "r3", 0.5)})
	if err == nil {
		t.Fatal("faulted batch succeeded")
	}
	if n != 0 {
		t.Errorf("saved %d records through a failing backend", n)
	}
	fb.SetConfig(FaultConfig{})
	if n, err := st.PutBatch([]*RunRecord{shardSample("a", "", "r2", 0.5)}); err != nil || n != 1 {
		t.Errorf("recovered batch: n=%d err=%v", n, err)
	}
}

// TestPutBatchShardedGroups writes one batch spanning shards and checks
// the result is indistinguishable from per-record saves into a single
// store: same keys, same records, grouping is invisible.
func TestPutBatchShardedGroups(t *testing.T) {
	dir := t.TempDir()
	sh, err := OpenSharded(dir, 4, DurableOptions{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	var batch []*RunRecord
	for _, v := range []string{"A", "B", "C", "G", "H"} {
		batch = append(batch, shardSample("poisson", v, "r1", 0.5))
		batch = append(batch, shardSample("poisson", v, "r2", 0.4))
	}
	n, err := sh.PutBatch(batch)
	if err != nil || n != len(batch) {
		t.Fatalf("PutBatch = %d, %v", n, err)
	}
	single := NewMemStore()
	for _, rec := range batch {
		if err := single.Save(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := sh.Keys(), single.Keys(); !reflect.DeepEqual(got, want) {
		t.Errorf("sharded keys %v, single keys %v", got, want)
	}
	for _, rec := range batch {
		got, err := sh.Load(rec.App, rec.Version, rec.RunID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Results[0].Value != rec.Results[0].Value {
			t.Errorf("%s round-tripped wrong", rec.Key())
		}
	}
}

// TestPutBatchShardedDownShard: a batch touching a down shard saves the
// groups before it (ascending shard order) and stops with a transient
// backend error.
func TestPutBatchShardedDownShard(t *testing.T) {
	dir := t.TempDir()
	sh, err := OpenSharded(dir, 4, DurableOptions{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	// poisson/A routes to shard 3 (pinned by TestShardForKeyStable);
	// force it down and batch a shard-3 record behind a healthy one.
	sh.shards[3].mu.Lock()
	sh.shards[3].down = true
	sh.shards[3].lastErr = "forced down for test"
	sh.shards[3].mu.Unlock()
	batch := []*RunRecord{
		shardSample("poisson", "A", "r1", 0.5), // shard 3: down
		shardSample("poisson", "B", "r1", 0.4), // shard 2: healthy
	}
	n, err := sh.PutBatch(batch)
	if err == nil {
		t.Fatal("batch into a down shard succeeded")
	}
	if !IsBackendError(err) || !strings.Contains(err.Error(), "shard down") {
		t.Errorf("down-shard err = %v", err)
	}
	if n != 1 {
		t.Errorf("saved = %d, want 1 (the healthy shard's group)", n)
	}
	if _, err := sh.Load("poisson", "B", "r1"); err != nil {
		t.Errorf("healthy group not saved: %v", err)
	}
	if _, err := sh.Load("poisson", "A", "r1"); err == nil || !errors.Is(err, errShardDown) {
		t.Errorf("down group load err = %v", err)
	}
}
