package history

import (
	"testing"
)

func queryStore(t *testing.T) *Store {
	t.Helper()
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r1 := sampleRecord("r1")
	r1.Results = append(r1.Results, NodeResult{
		Hyp: "ExcessiveSyncWaitingTime", Focus: "</Code/oned.f,/Machine,/Process,/SyncObject>",
		State: "true", Value: 0.4, ConcludedAt: 9,
	})
	r1.TrueCount = 2
	if err := st.Save(r1); err != nil {
		t.Fatal(err)
	}
	r2 := sampleRecord("r2")
	r2.Version = "B"
	if err := st.Save(r2); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRecordSelect(t *testing.T) {
	rec := sampleRecord("r1")
	rec.Results = append(rec.Results, NodeResult{Hyp: "X", Focus: "<f>", State: "pruned"})
	// Default: any concluded state.
	got := rec.Select(ResultFilter{})
	if len(got) != 2 {
		t.Errorf("Select(any concluded) = %d", len(got))
	}
	// Star includes pruned.
	if got := rec.Select(ResultFilter{State: "*"}); len(got) != 3 {
		t.Errorf("Select(*) = %d", len(got))
	}
	// Filters compose.
	got = rec.Select(ResultFilter{Hyp: "CPUbound", State: "false"})
	if len(got) != 1 || got[0].Hyp != "CPUbound" {
		t.Errorf("Select(CPUbound,false) = %+v", got)
	}
	if got := rec.Select(ResultFilter{MinValue: 0.3}); len(got) != 1 || got[0].Value != 0.5 {
		t.Errorf("Select(min 0.3) = %+v", got)
	}
	if got := rec.Select(ResultFilter{FocusContains: "/Machine,"}); len(got) != 2 {
		t.Errorf("Select(focus substr) = %+v", got)
	}
	// Results ordered by descending value.
	all := rec.Select(ResultFilter{})
	for i := 1; i < len(all); i++ {
		if all[i-1].Value < all[i].Value {
			t.Error("Select not ordered by value")
		}
	}
}

func TestStoreQuery(t *testing.T) {
	st := queryStore(t)
	hits, err := st.Query("poisson", "", ResultFilter{State: "true"})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 { // 2 from A/r1 + 1 from B/r2
		t.Fatalf("hits = %d", len(hits))
	}
	for i := 1; i < len(hits); i++ {
		if hits[i-1].Result.Value < hits[i].Result.Value {
			t.Error("query hits not ordered by value")
		}
	}
	// Version filter.
	hits, _ = st.Query("poisson", "B", ResultFilter{State: "true"})
	if len(hits) != 1 || hits[0].Version != "B" {
		t.Errorf("version filter = %+v", hits)
	}
	// Empty app rejected.
	if _, err := st.Query("", "", ResultFilter{}); err == nil {
		t.Error("empty app accepted")
	}
}

func TestPersistentBottlenecks(t *testing.T) {
	st := queryStore(t)
	counts, err := st.PersistentBottlenecks("poisson", "", 2)
	if err != nil {
		t.Fatal(err)
	}
	// The whole-program sync bottleneck is true in both runs.
	key := "ExcessiveSyncWaitingTime </Code,/Machine,/Process,/SyncObject>"
	if counts[key] != 2 {
		t.Errorf("persistent counts = %v", counts)
	}
	// The oned.f refinement is true in only one run: filtered out.
	if len(counts) != 1 {
		t.Errorf("persistent set = %v", counts)
	}
	// Threshold 1 keeps both.
	counts, _ = st.PersistentBottlenecks("poisson", "", 1)
	if len(counts) != 2 {
		t.Errorf("minRuns=1 set = %v", counts)
	}
}
