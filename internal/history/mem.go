package history

import (
	"fmt"
	"os"
	"sync"
)

// MemBackend keeps encoded records in process memory — the backend the
// evaluation harness runs on (every experiment's records flow through a
// store without touching disk), and the model for future remote
// backends: nothing in the Store façade assumes files.
type MemBackend struct {
	mu   sync.RWMutex
	data map[RecordKey][]byte
}

// NewMemBackend creates an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{data: make(map[RecordKey][]byte)}
}

// Name implements Backend.
func (b *MemBackend) Name() string { return "mem" }

// Put implements Backend.
func (b *MemBackend) Put(key RecordKey, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	b.mu.Lock()
	b.data[key] = cp
	b.mu.Unlock()
	return nil
}

// Get implements Backend.
func (b *MemBackend) Get(key RecordKey) ([]byte, error) {
	b.mu.RLock()
	data, ok := b.data[key]
	b.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("history: load %s: %w", key, os.ErrNotExist)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Delete implements Backend.
func (b *MemBackend) Delete(key RecordKey) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.data[key]; !ok {
		return fmt.Errorf("history: delete %s: %w", key, os.ErrNotExist)
	}
	delete(b.data, key)
	return nil
}

// Scan implements Backend, in deterministic key order.
func (b *MemBackend) Scan() ([]ScanEntry, []ScanIssue, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	keys := make([]RecordKey, 0, len(b.data))
	for k := range b.data {
		keys = append(keys, k)
	}
	sortKeys(keys)
	entries := make([]ScanEntry, 0, len(keys))
	for _, k := range keys {
		data := b.data[k]
		cp := make([]byte, len(data))
		copy(cp, data)
		entries = append(entries, ScanEntry{Name: k.String(), Data: cp})
	}
	return entries, nil, nil
}
