package history

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The write-ahead journal: the durability rung beneath the Store. Every
// Save and Delete is framed, CRC'd and appended here before the backend
// is touched, so a crash — a SIGKILL mid-rename, a torn write corrupting
// a previously acknowledged record — can always be rolled forward from
// the journal at the next open. The WAL is redo-only: replay folds the
// journal tail per key (last entry wins) and re-applies whatever the
// record files do not already reflect. See FORMATS.md "Write-ahead
// journal" for the frame layout and DESIGN.md §10 for the crash model.

// SyncPolicy names how often the WAL fsyncs its active segment.
type SyncPolicy string

// The sync policies. SyncAlways fsyncs after every append — an
// acknowledged write is durable across power loss, at roughly one fsync
// per Save. SyncIntervalPolicy fsyncs at most once per WALOptions.SyncEvery,
// bounding the loss window to that interval. SyncNone never fsyncs
// (process crashes still lose nothing — the OS holds the pages — but
// power loss may truncate the tail).
const (
	SyncAlways         SyncPolicy = "always"
	SyncIntervalPolicy SyncPolicy = "interval"
	SyncNone           SyncPolicy = "none"
)

// ParseSyncPolicy parses the -wal-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case SyncAlways, SyncIntervalPolicy, SyncNone:
		return SyncPolicy(s), nil
	}
	return "", fmt.Errorf("history: unknown WAL sync policy %q (want always|interval|none)", s)
}

// WALOptions configures a journal.
type WALOptions struct {
	// Sync is the fsync policy; "" means SyncAlways.
	Sync SyncPolicy
	// SyncEvery is the SyncIntervalPolicy cadence; <= 0 means 100ms.
	SyncEvery time.Duration
	// SegmentBytes rotates the active segment once it grows past this
	// size; <= 0 means 4 MiB.
	SegmentBytes int64
}

func (o WALOptions) withDefaults() WALOptions {
	if o.Sync == "" {
		o.Sync = SyncAlways
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// WALDirName is the store subdirectory holding journal segments.
const WALDirName = "wal"

// walSuffix names journal segment files: NNNNNNNN.wal, ordered by
// sequence number.
const walSuffix = ".wal"

// maxWALFrame bounds one frame's payload; anything larger is treated as
// frame corruption rather than allocated.
const maxWALFrame = 64 << 20

// WAL operations.
const (
	walOpPut    = "put"
	walOpDelete = "delete"
)

// The exported aliases let replication code construct and classify
// entries without re-spelling the wire strings.
const (
	WALOpPut    = walOpPut
	WALOpDelete = walOpDelete
)

// walEpochName is the per-journal epoch counter file. StartWAL truncates
// the segment history at every open, so frame sequence numbers restart
// from 1 each generation; the epoch disambiguates generations for
// replication consumers (a follower holding (epoch, seq) can tell a
// primary restart from a gap in the stream).
const walEpochName = "EPOCH"

// readWALEpoch returns the epoch recorded under dir, or 0 when absent.
func readWALEpoch(dir string) (uint64, error) {
	data, err := os.ReadFile(filepath.Join(dir, walEpochName))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	var epoch uint64
	if _, err := fmt.Sscanf(strings.TrimSpace(string(data)), "%d", &epoch); err != nil {
		return 0, fmt.Errorf("bad epoch file: %w", err)
	}
	return epoch, nil
}

// writeWALEpoch persists epoch under dir via tmp+rename+dirsync, so a
// crash never leaves a torn counter.
func writeWALEpoch(dir string, epoch uint64) error {
	tmp := filepath.Join(dir, walEpochName+".tmp")
	if err := os.WriteFile(tmp, []byte(fmt.Sprintf("%d\n", epoch)), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, walEpochName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// WALEntry is one journaled mutation. Put entries carry the full encoded
// record, so replay needs nothing but the journal; Delete entries carry
// only the key. A failed backend mutation appends a compensating entry
// restoring the pre-image, which keeps the fold (last entry per key)
// equal to the last acknowledged state.
type WALEntry struct {
	Op      string `json:"op"` // "put" | "delete"
	App     string `json:"app"`
	Version string `json:"version,omitempty"`
	RunID   string `json:"run_id"`
	// Data is base64 in the frame ([]byte, not json.RawMessage, on
	// purpose: the JSON encoder compacts embedded RawMessage, and replay
	// must restore the record file byte-for-byte, indentation included).
	Data []byte `json:"data,omitempty"`
}

// Key returns the record key the entry mutates.
func (e WALEntry) Key() RecordKey {
	return RecordKey{App: e.App, Version: e.Version, RunID: e.RunID}
}

// WALScanReport describes what reading a journal found.
type WALScanReport struct {
	// Segments and Entries count what was readable.
	Segments int
	Entries  int
	// TornTail reports an incomplete or CRC-failing final frame — the
	// normal residue of a crash mid-append. The torn frame was never
	// acknowledged, so replay simply stops before it.
	TornTail bool
	// Corrupt lists bad frames that are not the journal's tail — real
	// corruption, not crash residue. Reading stops at the first bad frame
	// of a segment; later segments are still read.
	Corrupt []string
}

// ReadWAL reads every decodable frame of every segment under dir, in
// segment then append order. A missing directory is an empty journal.
func ReadWAL(dir string) ([]WALEntry, *WALScanReport, error) {
	rep := &WALScanReport{}
	segs, err := walSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, rep, nil
		}
		return nil, rep, fmt.Errorf("history: wal: %w", err)
	}
	rep.Segments = len(segs)
	var entries []WALEntry
	for i, seg := range segs {
		last := i == len(segs)-1
		es, bad, err := readWALSegment(filepath.Join(dir, seg))
		if err != nil {
			return entries, rep, fmt.Errorf("history: wal %s: %w", seg, err)
		}
		entries = append(entries, es...)
		rep.Entries += len(es)
		if bad != "" {
			if last {
				rep.TornTail = true
			} else {
				rep.Corrupt = append(rep.Corrupt, seg+": "+bad)
			}
		}
	}
	return entries, rep, nil
}

// walSegments lists segment basenames under dir in sequence order.
func walSegments(dir string) ([]string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []string
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), walSuffix) {
			continue
		}
		segs = append(segs, de.Name())
	}
	sort.Strings(segs)
	return segs, nil
}

// readWALSegment decodes one segment. bad is "" when the segment ends
// cleanly, otherwise a description of the first undecodable frame
// (reading stops there).
func readWALSegment(path string) (entries []WALEntry, bad string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	off := 0
	for off < len(data) {
		if len(data)-off < 8 {
			return entries, fmt.Sprintf("short frame header at offset %d", off), nil
		}
		n := binary.BigEndian.Uint32(data[off:])
		sum := binary.BigEndian.Uint32(data[off+4:])
		if n == 0 || n > maxWALFrame {
			return entries, fmt.Sprintf("implausible frame length %d at offset %d", n, off), nil
		}
		if len(data)-off-8 < int(n) {
			return entries, fmt.Sprintf("truncated frame payload at offset %d", off), nil
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return entries, fmt.Sprintf("CRC mismatch at offset %d", off), nil
		}
		var e WALEntry
		if err := json.Unmarshal(payload, &e); err != nil {
			return entries, fmt.Sprintf("undecodable frame at offset %d: %v", off, err), nil
		}
		if e.Op != walOpPut && e.Op != walOpDelete {
			return entries, fmt.Sprintf("unknown op %q at offset %d", e.Op, off), nil
		}
		entries = append(entries, e)
		off += 8 + int(n)
	}
	return entries, "", nil
}

// WALFold computes the final intended state per key: the journal is
// sequential, so the last entry for a key is the last acknowledged (or
// compensated) mutation of it.
func WALFold(entries []WALEntry) map[RecordKey]WALEntry {
	out := make(map[RecordKey]WALEntry, len(entries))
	for _, e := range entries {
		out[e.Key()] = e
	}
	return out
}

// replayWAL re-applies the journal's folded tail onto b: puts whose
// bytes differ from (or are missing in) the backend are rewritten,
// deletes of still-present keys are re-deleted. It returns how many
// entries needed re-applying; the rest were already reflected on disk.
func replayWAL(b Backend, entries []WALEntry) (applied int, err error) {
	fold := WALFold(entries)
	keys := make([]RecordKey, 0, len(fold))
	for k := range fold {
		keys = append(keys, k)
	}
	sortKeys(keys)
	for _, k := range keys {
		e := fold[k]
		switch e.Op {
		case walOpPut:
			cur, gerr := b.Get(k)
			if gerr == nil && string(cur) == string(e.Data) {
				continue
			}
			if gerr != nil && !errors.Is(gerr, os.ErrNotExist) {
				return applied, fmt.Errorf("history: wal replay %s: %w", k, gerr)
			}
			if perr := b.Put(k, e.Data); perr != nil {
				return applied, fmt.Errorf("history: wal replay %s: %w", k, perr)
			}
			applied++
		case walOpDelete:
			_, gerr := b.Get(k)
			if errors.Is(gerr, os.ErrNotExist) {
				continue
			}
			if gerr != nil {
				return applied, fmt.Errorf("history: wal replay %s: %w", k, gerr)
			}
			if derr := b.Delete(k); derr != nil && !errors.Is(derr, os.ErrNotExist) {
				return applied, fmt.Errorf("history: wal replay %s: %w", k, derr)
			}
			applied++
		}
	}
	return applied, nil
}

// WALStats snapshots a journal's counters.
type WALStats struct {
	Appends   uint64 `json:"appends"`
	Syncs     uint64 `json:"syncs"`
	Rotations uint64 `json:"rotations"`
	Segments  int    `json:"segments"`
}

// WAL is an open write-ahead journal: an append-only sequence of CRC32-
// framed entries across rotated segment files. Safe for concurrent use.
type WAL struct {
	dir  string
	opts WALOptions

	mu       sync.Mutex
	f        *os.File
	seq      uint64
	size     int64
	lastSync time.Time
	dirty    bool
	// unsafeCompact is set when a compensating entry could not be healed
	// into the backend: old segments may still be needed by replay, so
	// rotation stops discarding them until the next open.
	unsafeCompact bool
	stale         []string // rotated, fully-applied segments awaiting removal
	segments      int
	// writeHook replaces the active segment's frame write when non-nil —
	// the seam torn-append tests use to fail a write partway through.
	writeHook func(f *os.File, frame []byte) (int, error)
	// onAppend, when set, observes every successfully journaled entry
	// (under w.mu, in append order) together with its sequence number
	// within this epoch. The replication shipper hangs off this seam.
	onAppend func(seq uint64, e WALEntry)

	// epoch counts journal generations: StartWAL discards segments, so
	// (epoch, append seq) uniquely names a frame across restarts. Atomic
	// because failover promotion bumps it (SetEpoch) while readers poll.
	epoch atomic.Uint64

	appends   atomic.Uint64
	syncs     atomic.Uint64
	rotations atomic.Uint64
}

// StartWAL opens a fresh journal under dir, discarding any existing
// segments — the caller (OpenStoreDurable, pcfsck -repair) has already
// replayed them into the record files. The first segment is created
// eagerly so an empty journal is distinguishable from an absent one.
func StartWAL(dir string, opts WALOptions) (*WAL, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("history: wal: %w", err)
	}
	segs, err := walSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("history: wal: %w", err)
	}
	for _, seg := range segs {
		if err := os.Remove(filepath.Join(dir, seg)); err != nil {
			return nil, fmt.Errorf("history: wal: %w", err)
		}
	}
	epoch, err := readWALEpoch(dir)
	if err != nil {
		return nil, fmt.Errorf("history: wal: %w", err)
	}
	epoch++
	if err := writeWALEpoch(dir, epoch); err != nil {
		return nil, fmt.Errorf("history: wal: %w", err)
	}
	w := &WAL{dir: dir, opts: opts}
	w.epoch.Store(epoch)
	if err := w.openSegment(1); err != nil {
		return nil, err
	}
	return w, nil
}

// Epoch returns the journal generation: incremented (and persisted) at
// every StartWAL, so frame sequence numbers — which restart from 1 each
// generation — are globally ordered as (epoch, seq).
func (w *WAL) Epoch() uint64 { return w.epoch.Load() }

// SetEpoch advances the journal generation without truncating segments.
// Failover promotion uses it to fence a dead primary's epoch: the new
// epoch is persisted first, so a crash between persist and the in-memory
// store still resolves to the bumped value at reopen. Epochs only move
// forward.
func (w *WAL) SetEpoch(epoch uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if epoch <= w.epoch.Load() {
		return fmt.Errorf("history: wal: epoch must advance (have %d, asked %d)", w.epoch.Load(), epoch)
	}
	if err := writeWALEpoch(w.dir, epoch); err != nil {
		return fmt.Errorf("history: wal: %w", err)
	}
	w.epoch.Store(epoch)
	return nil
}

// JournalEpoch reads the persisted journal generation for a store
// directory without opening the store — role reconciliation at daemon
// startup compares on-disk epochs against live peers before any journal
// is (re)started, since StartWAL itself bumps the epoch.
func JournalEpoch(storeDir string) (uint64, error) {
	return readWALEpoch(filepath.Join(storeDir, WALDirName))
}

// SetOnAppend installs fn to observe every journaled entry, called under
// the journal lock in append order with the entry's sequence number
// within the current epoch. Install before concurrent appends begin.
func (w *WAL) SetOnAppend(fn func(seq uint64, e WALEntry)) {
	w.mu.Lock()
	w.onAppend = fn
	w.mu.Unlock()
}

// openSegment creates and switches to segment seq. Callers hold w.mu
// (or have exclusive access during construction).
func (w *WAL) openSegment(seq uint64) error {
	f, err := os.OpenFile(w.segmentPath(seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("history: wal: %w", err)
	}
	// The segment must exist by name before frames are acknowledged.
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return fmt.Errorf("history: wal: %w", err)
	}
	w.f = f
	w.seq = seq
	w.size = 0
	w.segments++
	return nil
}

func (w *WAL) segmentPath(seq uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf("%08d%s", seq, walSuffix))
}

// Append journals one entry, rotating and syncing per the options. The
// entry is durable per the sync policy when Append returns.
func (w *WAL) Append(e WALEntry) error {
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("history: wal: %w", err)
	}
	frame := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("history: wal: closed")
	}
	if w.size > 0 && w.size+int64(len(frame)) > w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	write := (*os.File).Write
	if w.writeHook != nil {
		write = w.writeHook
	}
	if _, err := write(w.f, frame); err != nil {
		// A failed write may have left part of the frame on disk. No
		// frame must ever follow a torn one — replay stops at the first
		// bad frame, which would hide every later acknowledged entry —
		// so restore the segment to its last good frame before any
		// further append can land.
		w.repairTornTailLocked()
		return fmt.Errorf("history: wal append: %w", err)
	}
	w.size += int64(len(frame))
	w.dirty = true
	seq := w.appends.Add(1)
	if w.onAppend != nil {
		w.onAppend(seq, e)
	}
	switch w.opts.Sync {
	case SyncAlways:
		return w.syncLocked()
	case SyncIntervalPolicy:
		if time.Since(w.lastSync) >= w.opts.SyncEvery {
			return w.syncLocked()
		}
	}
	return nil
}

// repairTornTailLocked recovers from a failed frame write: truncate the
// active segment back to its last complete frame (w.size) so the next
// append lands where the torn one began. If even the truncate fails,
// the segment is abandoned for a fresh one — the abandoned tail reads
// as corrupt at the next open, but every frame before it still replays
// (the segment is retained, never compacted away). Callers hold w.mu.
func (w *WAL) repairTornTailLocked() {
	if w.f.Truncate(w.size) == nil {
		if _, err := w.f.Seek(w.size, io.SeekStart); err == nil {
			return
		}
	}
	w.f.Sync() // best effort for the acknowledged frames being abandoned
	w.f.Close()
	w.dirty = false
	if err := w.openSegment(w.seq + 1); err != nil {
		// No usable segment: the journal is broken; fail later appends
		// loudly rather than acknowledge writes it cannot hold.
		w.f = nil
	}
}

// rotateLocked closes the active segment and opens the next. Entries in
// closed segments were either applied to the backend or compensated, so
// the closed segments are discarded — unless a compensation could not be
// healed, in which case every closed segment is retained for the next
// open's replay.
func (w *WAL) rotateLocked() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("history: wal rotate: %w", err)
	}
	w.stale = append(w.stale, w.segmentPath(w.seq))
	w.rotations.Add(1)
	if err := w.openSegment(w.seq + 1); err != nil {
		return err
	}
	if !w.unsafeCompact {
		for _, path := range w.stale {
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("history: wal compact: %w", err)
			}
			w.segments--
		}
		w.stale = nil
	}
	return nil
}

// syncLocked fsyncs the active segment. Callers hold w.mu.
func (w *WAL) syncLocked() error {
	if !w.dirty {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("history: wal sync: %w", err)
	}
	w.dirty = false
	w.lastSync = time.Now()
	w.syncs.Add(1)
	return nil
}

// Sync flushes buffered frames to stable storage regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	return w.syncLocked()
}

// markUnsafe records that the record files may lag the journal (a
// compensating entry could not be healed); segment discarding stops
// until the next open replays everything.
func (w *WAL) markUnsafe() {
	w.mu.Lock()
	w.unsafeCompact = true
	w.mu.Unlock()
}

// Close syncs and closes the journal. Further appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// Stats snapshots the journal's counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	segments := w.segments
	w.mu.Unlock()
	return WALStats{
		Appends:   w.appends.Load(),
		Syncs:     w.syncs.Load(),
		Rotations: w.rotations.Load(),
		Segments:  segments,
	}
}

// Dir returns the journal directory.
func (w *WAL) Dir() string { return w.dir }
