package history

import (
	"fmt"
	"sort"
)

// RecordKey names one stored execution: the (application, code version,
// run id) triple the paper's experiment-management infrastructure keys
// multi-execution performance data by. Version may be empty.
type RecordKey struct {
	App     string
	Version string
	RunID   string
}

// String renders the key in the store's display form,
// app[-version]-runid — the naming the CLI tools print.
func (k RecordKey) String() string {
	if k.Version == "" {
		return k.App + "-" + k.RunID
	}
	return k.App + "-" + k.Version + "-" + k.RunID
}

// less orders keys by (App, Version, RunID).
func (k RecordKey) less(o RecordKey) bool {
	if k.App != o.App {
		return k.App < o.App
	}
	if k.Version != o.Version {
		return k.Version < o.Version
	}
	return k.RunID < o.RunID
}

// sortKeys orders a key slice deterministically.
func sortKeys(keys []RecordKey) {
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
}

// ScanIssue reports one entry a scan could not turn into a valid record —
// an unreadable file, corrupt JSON, or a record failing validation. Scans
// skip such entries instead of failing the whole store.
type ScanIssue struct {
	// Name is the backend-level name of the offending entry (a file
	// basename for the filesystem backend).
	Name string
	// Err is what went wrong.
	Err error
}

func (i ScanIssue) String() string { return fmt.Sprintf("%s: %v", i.Name, i.Err) }

// ScanEntry is one raw stored record yielded by Backend.Scan. The Store
// decodes, validates and indexes it; backends never interpret the bytes.
type ScanEntry struct {
	// Name identifies the entry for diagnostics (file basename, map key).
	Name string
	// Data is the encoded record.
	Data []byte
}

// Backend is the storage engine beneath Store. It moves opaque encoded
// records addressed by RecordKey; encoding, validation, indexing and
// querying live in the Store façade, so a backend only needs durable
// byte storage. Implementations must be safe for concurrent use.
type Backend interface {
	// Name identifies the backend for diagnostics ("fs:<dir>", "mem").
	Name() string
	// Put stores data under key, overwriting any previous value.
	Put(key RecordKey, data []byte) error
	// Get returns the encoded record for key. A missing key yields an
	// error satisfying errors.Is(err, os.ErrNotExist).
	Get(key RecordKey) ([]byte, error)
	// Delete removes key. Deleting a missing key yields an error
	// satisfying errors.Is(err, os.ErrNotExist).
	Delete(key RecordKey) error
	// Scan enumerates every stored record. Entries that cannot be read
	// are reported in issues and skipped, never failing the scan; the
	// returned error is reserved for whole-store failures. When one
	// logical record is reachable under several names (a legacy file and
	// its escaped successor), the authoritative entry is yielded last.
	Scan() ([]ScanEntry, []ScanIssue, error)
}
