package history

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Store is the experiment-store service layer: a concurrency-safe façade
// over a pluggable Backend that maintains an in-memory index of decoded
// records (app → version → run id), so Query and PersistentBottlenecks
// never re-read or re-unmarshal stored files per call. The paper's
// Section 6 calls for exactly this infrastructure for "storing, naming,
// and querying multi-execution performance data".
//
// All methods are safe for concurrent use. Records handed out by Load,
// LoadAll and Query are shared with the index and must be treated as
// read-only; the store interns one decoded copy per record, which also
// makes pointer identity usable as record identity downstream (the
// directive harvest cache keys on it).
type Store struct {
	backend Backend

	// wal is the write-ahead journal of durable stores (nil otherwise).
	// walMu serializes journal append + backend mutation per write, so
	// the journal's per-key fold always names the backend's final state.
	wal   *WAL
	walMu sync.Mutex

	mu       sync.RWMutex
	recs     map[RecordKey]*RunRecord
	issues   []ScanIssue
	recovery *RecoveryReport
}

// NewStore opens (creating if needed) a filesystem-backed store rooted
// at dir — the historical on-disk format, readable across tool sessions.
func NewStore(dir string) (*Store, error) {
	b, err := NewFSBackend(dir)
	if err != nil {
		return nil, err
	}
	return NewStoreWith(b)
}

// OpenStore opens an existing filesystem-backed store rooted at dir,
// failing when the directory does not exist. Read-only tools use this
// instead of NewStore so that a mistyped -store path surfaces as an
// error rather than as a silently empty store.
//
// OpenStore also runs crash recovery: orphaned atomic-write temp files
// are swept, and records the scan cannot decode are moved into the
// quarantine/ subdirectory (with a REPORT.txt line each) instead of
// being silently skipped forever. The Recovery method reports what was
// done; quarantined files are restorable by moving them back.
func OpenStore(dir string) (*Store, error) {
	return OpenStoreDurable(dir, DurableOptions{})
}

// DurableOptions configures OpenStoreDurable.
type DurableOptions struct {
	// Create makes the store directory when absent instead of failing
	// (NewStore semantics with the recovery pass of OpenStore).
	Create bool
	// WAL enables the write-ahead journal under <dir>/wal: Save and
	// Delete append there before the backend mutation, and the journal
	// tail is replayed into the record files at the next open.
	WAL bool
	// WALOptions tunes the journal; the zero value means fsync on every
	// append and 4 MiB segments.
	WALOptions WALOptions
	// Wrap, when non-nil, wraps the filesystem backend before the store
	// is built over it — the seam the chaos tooling uses to interpose a
	// FaultBackend. The journal replays through the wrapped backend too.
	Wrap func(Backend) Backend

	// The remaining fields apply only to sharded layouts (OpenSharded /
	// OpenStoreAuto); OpenStoreDurable ignores them.

	// WrapShard wraps each shard's backend individually, taking
	// precedence over Wrap — the seam for faulting a single shard.
	WrapShard func(shard int, b Backend) Backend
	// ShardTimeout bounds each shard's contribution to a scatter-gather
	// read; a shard missing the deadline is treated as absent for that
	// call. Zero means 2s.
	ShardTimeout time.Duration
	// ShardBreakerThreshold is the consecutive-backend-failure count
	// that marks a shard down until a Ping revives it. Zero means 3.
	ShardBreakerThreshold int
	// Replicas records the follower count the deployment expects per
	// shard in the layout manifest (0 = unreplicated). Informational for
	// the store itself; the replication layer reads it back.
	Replicas int
	// Failover, when non-nil, supplies replica handles for down shards:
	// reads fail over to a follower instead of degrading to absent, and —
	// with Promote set — writes do too, via one-way promotion.
	Failover ShardFailover
	// Promote allows a down shard's keyspace to be handed to a follower
	// for writes. Without it failover is read-only.
	Promote bool
}

// OpenStoreDurable opens a filesystem-backed store with the durability
// ladder of DESIGN.md §10: temp-file sweep, then write-ahead-journal
// replay (so a torn rename or a crash mid-write never loses an
// acknowledged record), then the quarantine pass over whatever is still
// unreadable. The order matters — a record the journal can roll forward
// is repaired, not quarantined. The replay outcome is part of Recovery's
// report. A store written before the journal existed (no wal/ directory)
// opens cleanly with an empty journal.
func OpenStoreDurable(dir string, o DurableOptions) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("history: empty store directory")
	}
	if !o.Create {
		fi, err := os.Stat(dir)
		if err != nil {
			return nil, fmt.Errorf("history: open store: %w", err)
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("history: open store: %s is not a directory", dir)
		}
	}
	fb, err := NewFSBackend(dir)
	if err != nil {
		return nil, err
	}
	b := Backend(fb)
	if o.Wrap != nil {
		b = o.Wrap(b)
	}
	rep := &RecoveryReport{}
	swept, err := fb.SweepTemp()
	rep.SweptTemp = swept
	if err != nil {
		return nil, fmt.Errorf("history: recover store: %w", err)
	}
	var wal *WAL
	if o.WAL {
		walDir := filepath.Join(dir, WALDirName)
		entries, scan, err := ReadWAL(walDir)
		if err != nil {
			return nil, fmt.Errorf("history: recover store: %w", err)
		}
		applied, err := replayWAL(b, entries)
		rep.WAL = &WALRecovery{
			Segments: scan.Segments,
			Entries:  scan.Entries,
			Replayed: applied,
			TornTail: scan.TornTail,
			Corrupt:  scan.Corrupt,
		}
		if err != nil {
			return nil, fmt.Errorf("history: recover store: %w", err)
		}
		// Every journaled write is folded into the record files now;
		// truncate the journal rather than replaying it forever.
		wal, err = StartWAL(walDir, o.WALOptions)
		if err != nil {
			return nil, err
		}
		// StartWAL bumped the journal generation; a promoted shard's
		// replication state tracks that generation (it is what fencing
		// advertises), so re-sync it. Keeps the pcfsck invariant — a
		// promoted replica/STATE.json epoch equals wal/EPOCH at rest —
		// true across restarts, not just right after promotion.
		if err := syncPromotedStateEpoch(dir, wal.Epoch()); err != nil {
			return nil, fmt.Errorf("history: recover store: %w", err)
		}
	}
	st, err := NewStoreWith(b)
	if err != nil {
		return nil, err
	}
	st.wal = wal
	if err := st.quarantinePass(fb, rep); err != nil {
		return nil, fmt.Errorf("history: recover store: %w", err)
	}
	st.mu.Lock()
	st.recovery = rep
	st.mu.Unlock()
	return st, nil
}

// NewMemStore creates a store over a fresh in-memory backend.
func NewMemStore() *Store {
	s, _ := NewStoreWith(NewMemBackend()) // a memory scan cannot fail
	return s
}

// NewStoreWith opens a store over any backend, indexing its current
// contents.
func NewStoreWith(b Backend) (*Store, error) {
	if b == nil {
		return nil, fmt.Errorf("history: nil backend")
	}
	s := &Store{backend: b}
	if err := s.Refresh(); err != nil {
		return nil, err
	}
	return s, nil
}

// Backend returns the storage engine beneath the store.
func (s *Store) Backend() Backend { return s.backend }

// Dir returns the store's directory for filesystem-backed stores and ""
// otherwise. Wrapping backends (FaultBackend, DurableOptions.Wrap) are
// seen through, so the directory survives fault injection — the session
// journal and quarantine paths must land inside the store either way.
func (s *Store) Dir() string {
	b := s.backend
	for {
		if fb, ok := b.(*FSBackend); ok {
			return fb.Dir()
		}
		w, ok := b.(interface{ Inner() Backend })
		if !ok {
			return ""
		}
		b = w.Inner()
	}
}

// Refresh rebuilds the index from a full backend scan, picking up
// records written behind the store's back. Corrupt or invalid entries
// are skipped and reported via ScanIssues.
func (s *Store) Refresh() error {
	entries, issues, err := s.backend.Scan()
	if err != nil {
		return &BackendError{Op: "scan", Err: err}
	}
	recs := make(map[RecordKey]*RunRecord, len(entries))
	for _, e := range entries {
		rec, err := decodeRecord(e.Data)
		if err != nil {
			issues = append(issues, ScanIssue{Name: e.Name, Err: err})
			continue
		}
		// Last entry wins; backends yield the authoritative name last
		// when one record is reachable under both legacy and escaped
		// names.
		recs[rec.Key()] = rec
	}
	s.mu.Lock()
	s.recs = recs
	s.issues = issues
	s.mu.Unlock()
	return nil
}

// ScanIssues returns the entries the last scan (or subsequent loads)
// skipped as unreadable or invalid.
func (s *Store) ScanIssues() []ScanIssue {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ScanIssue, len(s.issues))
	copy(out, s.issues)
	return out
}

// decodeRecord unmarshals and validates one encoded record.
func decodeRecord(data []byte) (*RunRecord, error) {
	rec := &RunRecord{}
	if err := json.Unmarshal(data, rec); err != nil {
		return nil, fmt.Errorf("history: unmarshal: %w", err)
	}
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	return rec, nil
}

// Save writes (or overwrites) a record. The index caches its own decoded
// copy, detached from the caller's pointer.
func (s *Store) Save(rec *RunRecord) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("history: marshal: %w", err)
	}
	cached, err := decodeRecord(data)
	if err != nil {
		return err
	}
	key := cached.Key()
	if s.wal != nil {
		s.walMu.Lock()
		defer s.walMu.Unlock()
		if err := s.wal.Append(WALEntry{
			Op:      walOpPut,
			App:     key.App,
			Version: key.Version,
			RunID:   key.RunID,
			Data:    data,
		}); err != nil {
			// The journal is the durability promise: if it cannot take
			// the entry, refuse the write before the backend sees it.
			return asBackendError("wal append", err)
		}
	}
	if err := s.backend.Put(key, data); err != nil {
		// The index must never contain a record the backend rejected:
		// return before touching s.recs, classified as a backend failure
		// so the service layer can degrade instead of blaming the caller.
		// In WAL mode the journaled intent must not win either — it was
		// never acknowledged — so append a compensating pre-image entry.
		s.compensate(key)
		return asBackendError("put", err)
	}
	s.mu.Lock()
	s.recs[key] = cached
	s.mu.Unlock()
	return nil
}

// PutBatch writes records in input order, stopping at the first
// failure. Every record is validated before anything is written, so a
// malformed batch fails whole without partial effects; a backend
// failure mid-batch leaves the earlier records saved and reports how
// many.
func (s *Store) PutBatch(recs []*RunRecord) (int, error) {
	for i, rec := range recs {
		if rec == nil {
			return 0, fmt.Errorf("history: batch record %d is nil", i)
		}
		if err := rec.Validate(); err != nil {
			return 0, fmt.Errorf("history: batch record %d: %w", i, err)
		}
	}
	for i, rec := range recs {
		if err := s.Save(rec); err != nil {
			return i, err
		}
	}
	return len(recs), nil
}

// compensate appends the pre-image of key to the journal after a failed
// backend mutation, so the replay fold resolves to the state the caller
// last had acknowledged rather than to the intent that just failed. A
// failed mutation can also leave the record file torn on disk, so
// compensate then tries to heal the backend in place; when that also
// fails the journal marks itself unsafe to compact, pinning the rotated
// segments until the next open's replay repairs the file.
//
// Callers hold walMu. compensate is best-effort by design: the write it
// compensates for has already been reported as failed.
func (s *Store) compensate(key RecordKey) {
	if s.wal == nil {
		return
	}
	e := WALEntry{Op: walOpDelete, App: key.App, Version: key.Version, RunID: key.RunID}
	s.mu.RLock()
	prev, ok := s.recs[key]
	s.mu.RUnlock()
	if ok {
		// Re-marshal the indexed copy: Save wrote exactly these bytes, so
		// the replayed file is byte-identical to the acknowledged state.
		data, err := json.MarshalIndent(prev, "", "  ")
		if err != nil {
			s.wal.markUnsafe()
			return
		}
		e = WALEntry{
			Op:      walOpPut,
			App:     key.App,
			Version: key.Version,
			RunID:   key.RunID,
			Data:    data,
		}
	}
	if err := s.wal.Append(e); err != nil {
		s.wal.markUnsafe()
		return
	}
	if _, err := replayWAL(s.backend, []WALEntry{e}); err != nil {
		// Could not heal in place (the backend may still be failing);
		// the journal must survive rotation until the next open fixes it.
		s.wal.markUnsafe()
	}
}

// Load reads one record by app, version and run id. The returned record
// is shared with the index: treat it as read-only.
func (s *Store) Load(app, version, runID string) (*RunRecord, error) {
	key := RecordKey{App: app, Version: version, RunID: runID}
	s.mu.RLock()
	rec, ok := s.recs[key]
	s.mu.RUnlock()
	if ok {
		return rec, nil
	}
	// Not indexed: fall through to the backend for records written
	// behind the store's back since the last Refresh.
	data, err := s.backend.Get(key)
	if err != nil {
		return nil, asBackendError("get", err)
	}
	rec, err = decodeRecord(data)
	if err != nil {
		return nil, err
	}
	if rec.Key() != key {
		// A legacy-named file can shadow a different key (the old
		// app-version-runid ambiguity); identity comes from the content.
		return nil, fmt.Errorf("history: load %s: record identifies as %s", key, rec.Key())
	}
	s.mu.Lock()
	if prev, ok := s.recs[key]; ok {
		rec = prev // another goroutine indexed it first; keep one copy
	} else {
		s.recs[key] = rec
	}
	s.mu.Unlock()
	return rec, nil
}

// Delete removes one record from the backend and the index.
func (s *Store) Delete(app, version, runID string) error {
	key := RecordKey{App: app, Version: version, RunID: runID}
	if s.wal != nil {
		s.walMu.Lock()
		defer s.walMu.Unlock()
		if err := s.wal.Append(WALEntry{
			Op:      walOpDelete,
			App:     key.App,
			Version: key.Version,
			RunID:   key.RunID,
		}); err != nil {
			return asBackendError("wal append", err)
		}
	}
	if err := s.backend.Delete(key); err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			// A journaled delete that the backend failed to perform must
			// not win the replay fold; restore the pre-image entry. (A
			// miss needs no compensation — absent is what was journaled.)
			s.compensate(key)
		}
		return asBackendError("delete", err)
	}
	s.mu.Lock()
	delete(s.recs, key)
	s.mu.Unlock()
	return nil
}

// WAL returns the store's write-ahead journal, or nil when the store was
// not opened durable.
func (s *Store) WAL() *WAL { return s.wal }

// SyncWAL flushes the journal to stable storage regardless of the sync
// policy — the shutdown barrier pcd runs before exit so an interval or
// none policy loses nothing on a graceful stop. A store without a
// journal has nothing to flush.
func (s *Store) SyncWAL() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Sync()
}

// ApplyReplicated folds one replicated journal entry into the store: the
// entry is appended to this store's own journal (the follower's
// durability holds independently of the primary's) and the exact
// journaled bytes are written to the backend, so a replicated record
// file is byte-identical to the primary's. Re-applying an entry the
// store already reflects is a no-op in effect — replication retries and
// restarts converge rather than diverge.
func (s *Store) ApplyReplicated(e WALEntry) error {
	key := e.Key()
	var cached *RunRecord
	switch e.Op {
	case walOpPut:
		rec, err := decodeRecord(e.Data)
		if err != nil {
			return fmt.Errorf("history: replicated entry %s: %w", key, err)
		}
		if rec.Key() != key {
			return fmt.Errorf("history: replicated entry %s: record identifies as %s", key, rec.Key())
		}
		cached = rec
	case walOpDelete:
	default:
		return fmt.Errorf("history: replicated entry %s: unknown op %q", key, e.Op)
	}
	if s.wal != nil {
		s.walMu.Lock()
		defer s.walMu.Unlock()
		if err := s.wal.Append(e); err != nil {
			return asBackendError("wal append", err)
		}
	}
	if e.Op == walOpDelete {
		if err := s.backend.Delete(key); err != nil {
			if !errors.Is(err, os.ErrNotExist) {
				s.compensate(key)
				return asBackendError("delete", err)
			}
		}
		s.mu.Lock()
		delete(s.recs, key)
		s.mu.Unlock()
		return nil
	}
	if err := s.backend.Put(key, e.Data); err != nil {
		s.compensate(key)
		return asBackendError("put", err)
	}
	s.mu.Lock()
	s.recs[key] = cached
	s.mu.Unlock()
	return nil
}

// ReplicaSnapshot captures a consistent image of the store for follower
// bootstrap: the journal position (epoch, seq) plus every record as a
// put entry carrying the exact stored bytes. The snapshot is taken under
// the journal lock, so it reflects a point between writes — a follower
// that installs it and then replays frames after seq converges to the
// primary. Requires a durable (journaled) store.
func (s *Store) ReplicaSnapshot() (epoch, seq uint64, entries []WALEntry, err error) {
	if s.wal == nil {
		return 0, 0, nil, fmt.Errorf("history: replica snapshot: store has no journal")
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	epoch = s.wal.Epoch()
	seq = s.wal.Stats().Appends
	s.mu.RLock()
	keys := make([]RecordKey, 0, len(s.recs))
	for k := range s.recs {
		keys = append(keys, k)
	}
	sortKeys(keys)
	entries = make([]WALEntry, 0, len(keys))
	for _, k := range keys {
		// Re-marshal the indexed copy: Save wrote exactly these bytes, so
		// the follower's record files come out byte-identical.
		data, merr := json.MarshalIndent(s.recs[k], "", "  ")
		if merr != nil {
			s.mu.RUnlock()
			return 0, 0, nil, fmt.Errorf("history: replica snapshot %s: %w", k, merr)
		}
		entries = append(entries, WALEntry{
			Op: walOpPut, App: k.App, Version: k.Version, RunID: k.RunID, Data: data,
		})
	}
	s.mu.RUnlock()
	return epoch, seq, entries, nil
}

// Close flushes and closes the store's journal (if any). The store's
// read side keeps working; further Save/Delete calls fail in WAL mode.
func (s *Store) Close() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Close()
}

// Keys returns every indexed record key, ordered by (app, version,
// run id).
func (s *Store) Keys() []RecordKey {
	s.mu.RLock()
	keys := make([]RecordKey, 0, len(s.recs))
	for k := range s.recs {
		keys = append(keys, k)
	}
	s.mu.RUnlock()
	sortKeys(keys)
	return keys
}

// Len returns the number of indexed records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}

// List returns the stored records' display names
// (app[-version]-runid), sorted. Unreadable entries are skipped; see
// ScanIssues. The error return is kept for interface stability — an
// open store lists from its index and cannot fail.
func (s *Store) List() ([]string, error) {
	keys := s.Keys()
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k.String())
	}
	sort.Strings(out)
	return out, nil
}

// LoadAll returns every indexed record whose app (and version, when
// non-empty) matches, ordered by key. Records are shared with the
// index: treat them as read-only.
func (s *Store) LoadAll(app, version string) ([]*RunRecord, error) {
	s.mu.RLock()
	keys := make([]RecordKey, 0, len(s.recs))
	for k := range s.recs {
		if k.App != app {
			continue
		}
		if version != "" && k.Version != version {
			continue
		}
		keys = append(keys, k)
	}
	sortKeys(keys)
	out := make([]*RunRecord, 0, len(keys))
	for _, k := range keys {
		out = append(out, s.recs[k])
	}
	s.mu.RUnlock()
	return out, nil
}

// asBackendError wraps err as a BackendError unless it already is one
// (the FaultBackend pre-classifies its injections).
func asBackendError(op string, err error) error {
	var be *BackendError
	if errors.As(err, &be) {
		return err
	}
	return &BackendError{Op: op, Err: err}
}

// Ping probes the backend with a cheap read. It returns nil while the
// engine answers (a miss counts as an answer) and the failure otherwise
// — the health check the diagnosis service uses to notice a degraded
// store recovering without being restarted.
func (s *Store) Ping() error {
	_, err := s.backend.Get(RecordKey{App: "\x00ping", RunID: "\x00ping"})
	if err == nil || errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return asBackendError("get", err)
}

// Key returns the record's store key.
func (r *RunRecord) Key() RecordKey {
	return RecordKey{App: r.App, Version: r.Version, RunID: r.RunID}
}

// syncPromotedStateEpoch rewrites a promoted shard's replica/STATE.json
// epoch to the journal's generation. StartWAL bumps the generation at
// every open, and the state file — the epoch a promoted node advertises
// and persists across restarts — must track it, or the node would fence
// against its own journal. The file is read generically (the replica
// package owns its schema) and patched in place; no state file, or an
// unpromoted one, is a no-op.
func syncPromotedStateEpoch(storeDir string, epoch uint64) error {
	spath := filepath.Join(storeDir, "replica", "STATE.json")
	data, err := os.ReadFile(spath)
	if err != nil {
		return nil // no replication state — nothing to sync
	}
	var st map[string]any
	if err := json.Unmarshal(data, &st); err != nil {
		return nil // torn state restarts from zero at the replica layer
	}
	if promoted, _ := st["promoted"].(bool); !promoted {
		return nil
	}
	if cur, ok := st["epoch"].(float64); ok && uint64(cur) == epoch {
		return nil
	}
	st["epoch"] = epoch
	out, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	tmp := spath + ".tmp"
	if err := os.WriteFile(tmp, append(out, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, spath)
}
