package history

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
)

// Store is the experiment-store service layer: a concurrency-safe façade
// over a pluggable Backend that maintains an in-memory index of decoded
// records (app → version → run id), so Query and PersistentBottlenecks
// never re-read or re-unmarshal stored files per call. The paper's
// Section 6 calls for exactly this infrastructure for "storing, naming,
// and querying multi-execution performance data".
//
// All methods are safe for concurrent use. Records handed out by Load,
// LoadAll and Query are shared with the index and must be treated as
// read-only; the store interns one decoded copy per record, which also
// makes pointer identity usable as record identity downstream (the
// directive harvest cache keys on it).
type Store struct {
	backend Backend

	mu       sync.RWMutex
	recs     map[RecordKey]*RunRecord
	issues   []ScanIssue
	recovery *RecoveryReport
}

// NewStore opens (creating if needed) a filesystem-backed store rooted
// at dir — the historical on-disk format, readable across tool sessions.
func NewStore(dir string) (*Store, error) {
	b, err := NewFSBackend(dir)
	if err != nil {
		return nil, err
	}
	return NewStoreWith(b)
}

// OpenStore opens an existing filesystem-backed store rooted at dir,
// failing when the directory does not exist. Read-only tools use this
// instead of NewStore so that a mistyped -store path surfaces as an
// error rather than as a silently empty store.
//
// OpenStore also runs crash recovery: orphaned atomic-write temp files
// are swept, and records the scan cannot decode are moved into the
// quarantine/ subdirectory (with a REPORT.txt line each) instead of
// being silently skipped forever. The Recovery method reports what was
// done; quarantined files are restorable by moving them back.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("history: empty store directory")
	}
	fi, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("history: open store: %w", err)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("history: open store: %s is not a directory", dir)
	}
	st, err := NewStore(dir)
	if err != nil {
		return nil, err
	}
	fb, _ := st.backend.(*FSBackend) // NewStore always builds one
	rep, err := st.recoverFS(fb)
	if err != nil {
		return nil, fmt.Errorf("history: recover store: %w", err)
	}
	st.mu.Lock()
	st.recovery = rep
	st.mu.Unlock()
	return st, nil
}

// NewMemStore creates a store over a fresh in-memory backend.
func NewMemStore() *Store {
	s, _ := NewStoreWith(NewMemBackend()) // a memory scan cannot fail
	return s
}

// NewStoreWith opens a store over any backend, indexing its current
// contents.
func NewStoreWith(b Backend) (*Store, error) {
	if b == nil {
		return nil, fmt.Errorf("history: nil backend")
	}
	s := &Store{backend: b}
	if err := s.Refresh(); err != nil {
		return nil, err
	}
	return s, nil
}

// Backend returns the storage engine beneath the store.
func (s *Store) Backend() Backend { return s.backend }

// Dir returns the store's directory for filesystem-backed stores and ""
// otherwise.
func (s *Store) Dir() string {
	if fb, ok := s.backend.(*FSBackend); ok {
		return fb.Dir()
	}
	return ""
}

// Refresh rebuilds the index from a full backend scan, picking up
// records written behind the store's back. Corrupt or invalid entries
// are skipped and reported via ScanIssues.
func (s *Store) Refresh() error {
	entries, issues, err := s.backend.Scan()
	if err != nil {
		return &BackendError{Op: "scan", Err: err}
	}
	recs := make(map[RecordKey]*RunRecord, len(entries))
	for _, e := range entries {
		rec, err := decodeRecord(e.Data)
		if err != nil {
			issues = append(issues, ScanIssue{Name: e.Name, Err: err})
			continue
		}
		// Last entry wins; backends yield the authoritative name last
		// when one record is reachable under both legacy and escaped
		// names.
		recs[rec.Key()] = rec
	}
	s.mu.Lock()
	s.recs = recs
	s.issues = issues
	s.mu.Unlock()
	return nil
}

// ScanIssues returns the entries the last scan (or subsequent loads)
// skipped as unreadable or invalid.
func (s *Store) ScanIssues() []ScanIssue {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ScanIssue, len(s.issues))
	copy(out, s.issues)
	return out
}

// decodeRecord unmarshals and validates one encoded record.
func decodeRecord(data []byte) (*RunRecord, error) {
	rec := &RunRecord{}
	if err := json.Unmarshal(data, rec); err != nil {
		return nil, fmt.Errorf("history: unmarshal: %w", err)
	}
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	return rec, nil
}

// Save writes (or overwrites) a record. The index caches its own decoded
// copy, detached from the caller's pointer.
func (s *Store) Save(rec *RunRecord) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("history: marshal: %w", err)
	}
	cached, err := decodeRecord(data)
	if err != nil {
		return err
	}
	if err := s.backend.Put(cached.Key(), data); err != nil {
		// The index must never contain a record the backend rejected:
		// return before touching s.recs, classified as a backend failure
		// so the service layer can degrade instead of blaming the caller.
		return asBackendError("put", err)
	}
	s.mu.Lock()
	s.recs[cached.Key()] = cached
	s.mu.Unlock()
	return nil
}

// Load reads one record by app, version and run id. The returned record
// is shared with the index: treat it as read-only.
func (s *Store) Load(app, version, runID string) (*RunRecord, error) {
	key := RecordKey{App: app, Version: version, RunID: runID}
	s.mu.RLock()
	rec, ok := s.recs[key]
	s.mu.RUnlock()
	if ok {
		return rec, nil
	}
	// Not indexed: fall through to the backend for records written
	// behind the store's back since the last Refresh.
	data, err := s.backend.Get(key)
	if err != nil {
		return nil, asBackendError("get", err)
	}
	rec, err = decodeRecord(data)
	if err != nil {
		return nil, err
	}
	if rec.Key() != key {
		// A legacy-named file can shadow a different key (the old
		// app-version-runid ambiguity); identity comes from the content.
		return nil, fmt.Errorf("history: load %s: record identifies as %s", key, rec.Key())
	}
	s.mu.Lock()
	if prev, ok := s.recs[key]; ok {
		rec = prev // another goroutine indexed it first; keep one copy
	} else {
		s.recs[key] = rec
	}
	s.mu.Unlock()
	return rec, nil
}

// Delete removes one record from the backend and the index.
func (s *Store) Delete(app, version, runID string) error {
	key := RecordKey{App: app, Version: version, RunID: runID}
	if err := s.backend.Delete(key); err != nil {
		return asBackendError("delete", err)
	}
	s.mu.Lock()
	delete(s.recs, key)
	s.mu.Unlock()
	return nil
}

// Keys returns every indexed record key, ordered by (app, version,
// run id).
func (s *Store) Keys() []RecordKey {
	s.mu.RLock()
	keys := make([]RecordKey, 0, len(s.recs))
	for k := range s.recs {
		keys = append(keys, k)
	}
	s.mu.RUnlock()
	sortKeys(keys)
	return keys
}

// Len returns the number of indexed records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}

// List returns the stored records' display names
// (app[-version]-runid), sorted. Unreadable entries are skipped; see
// ScanIssues. The error return is kept for interface stability — an
// open store lists from its index and cannot fail.
func (s *Store) List() ([]string, error) {
	keys := s.Keys()
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k.String())
	}
	sort.Strings(out)
	return out, nil
}

// LoadAll returns every indexed record whose app (and version, when
// non-empty) matches, ordered by key. Records are shared with the
// index: treat them as read-only.
func (s *Store) LoadAll(app, version string) ([]*RunRecord, error) {
	s.mu.RLock()
	keys := make([]RecordKey, 0, len(s.recs))
	for k := range s.recs {
		if k.App != app {
			continue
		}
		if version != "" && k.Version != version {
			continue
		}
		keys = append(keys, k)
	}
	sortKeys(keys)
	out := make([]*RunRecord, 0, len(keys))
	for _, k := range keys {
		out = append(out, s.recs[k])
	}
	s.mu.RUnlock()
	return out, nil
}

// asBackendError wraps err as a BackendError unless it already is one
// (the FaultBackend pre-classifies its injections).
func asBackendError(op string, err error) error {
	var be *BackendError
	if errors.As(err, &be) {
		return err
	}
	return &BackendError{Op: op, Err: err}
}

// Ping probes the backend with a cheap read. It returns nil while the
// engine answers (a miss counts as an answer) and the failure otherwise
// — the health check the diagnosis service uses to notice a degraded
// store recovering without being restarted.
func (s *Store) Ping() error {
	_, err := s.backend.Get(RecordKey{App: "\x00ping", RunID: "\x00ping"})
	if err == nil || errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return asBackendError("get", err)
}

// Key returns the record's store key.
func (r *RunRecord) Key() RecordKey {
	return RecordKey{App: r.App, Version: r.Version, RunID: r.RunID}
}
