package history

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Store persists run records as JSON files in a directory, one file per
// run: <app>[-<version>]-<runid>.json.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("history: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("history: create store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) fileFor(rec *RunRecord) string {
	name := rec.App
	if rec.Version != "" {
		name += "-" + rec.Version
	}
	return filepath.Join(s.dir, name+"-"+rec.RunID+".json")
}

// Save writes (or overwrites) a record.
func (s *Store) Save(rec *RunRecord) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("history: marshal: %w", err)
	}
	tmp := s.fileFor(rec) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("history: write: %w", err)
	}
	return os.Rename(tmp, s.fileFor(rec))
}

// Load reads one record by app, version and run id.
func (s *Store) Load(app, version, runID string) (*RunRecord, error) {
	rec := &RunRecord{App: app, Version: version, RunID: runID}
	data, err := os.ReadFile(s.fileFor(rec))
	if err != nil {
		return nil, fmt.Errorf("history: load: %w", err)
	}
	out := &RunRecord{}
	if err := json.Unmarshal(data, out); err != nil {
		return nil, fmt.Errorf("history: unmarshal: %w", err)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// List returns the store's record file basenames, sorted.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("history: list: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		out = append(out, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(out)
	return out, nil
}

// LoadAll loads every record whose app (and version, when non-empty)
// matches.
func (s *Store) LoadAll(app, version string) ([]*RunRecord, error) {
	names, err := s.List()
	if err != nil {
		return nil, err
	}
	var out []*RunRecord
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(s.dir, n+".json"))
		if err != nil {
			return nil, err
		}
		rec := &RunRecord{}
		if err := json.Unmarshal(data, rec); err != nil {
			return nil, fmt.Errorf("history: unmarshal %s: %w", n, err)
		}
		if rec.App != app {
			continue
		}
		if version != "" && rec.Version != version {
			continue
		}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("history: %s: %w", n, err)
		}
		out = append(out, rec)
	}
	return out, nil
}
