package history

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Failover durability checks: the promoted-shard epoch cross-check
// (replica/STATE.json vs wal/EPOCH) and the open-time re-sync that
// keeps it true across restarts.

// writeReplicaState writes a minimal replica/STATE.json under dir.
func writeReplicaState(t *testing.T, dir string, st map[string]any) {
	t.Helper()
	rdir := filepath.Join(dir, "replica")
	if err := os.MkdirAll(rdir, 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(rdir, "STATE.json"), append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func readStateEpoch(t *testing.T, dir string) uint64 {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "replica", "STATE.json"))
	if err != nil {
		t.Fatal(err)
	}
	var st map[string]any
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	e, _ := st["epoch"].(float64)
	return uint64(e)
}

// TestFsckPromotedStateEpochMismatch: a promoted shard whose persisted
// state epoch disagrees with the journal's is crash residue from
// between the two writes of a promotion; -repair reconciles the state
// file to the journal (the authority fencing compares against).
func TestFsckPromotedStateEpochMismatch(t *testing.T) {
	dir := fsckDurableStore(t)
	jepoch, err := JournalEpoch(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeReplicaState(t, dir, map[string]any{
		"version": 2, "epoch": jepoch + 4, "applied_seq": 3, "promoted": true,
	})
	rep, err := FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckResidue {
		t.Fatalf("epoch mismatch graded %d, want residue: %v", rep.Severity(), findingPaths(rep))
	}
	found := false
	for _, f := range rep.Findings {
		if f.Path == filepath.Join("replica", "STATE.json") && strings.Contains(f.Problem, "disagrees with journal epoch") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no STATE.json finding in %v", findingPaths(rep))
	}
	// Repair reconciles to the journal's epoch; the next pass is clean.
	if _, err := FsckStore(dir, true); err != nil {
		t.Fatal(err)
	}
	if got := readStateEpoch(t, dir); got != jepoch {
		t.Fatalf("repaired state epoch = %d, want the journal's %d", got, jepoch)
	}
	rep, err = FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckClean {
		t.Fatalf("store after repair graded %d: %v", rep.Severity(), findingPaths(rep))
	}
}

// TestFsckUnpromotedStateEpochNotChecked: an unpromoted follower's
// state epoch tracks its remote primary's journal, not the local one —
// a mismatch there is normal and must not be flagged.
func TestFsckUnpromotedStateEpochNotChecked(t *testing.T) {
	dir := fsckDurableStore(t)
	writeReplicaState(t, dir, map[string]any{
		"version": 2, "epoch": 42, "applied_seq": 3,
	})
	rep, err := FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckClean {
		t.Fatalf("unpromoted state epoch flagged: %v", findingPaths(rep))
	}
}

// TestOpenResyncsPromotedStateEpoch: StartWAL bumps the journal
// generation at every open; a promoted shard's state file must track it
// (it is the epoch the node advertises for fencing), so OpenStoreDurable
// re-syncs — keeping the fsck invariant true across restarts.
func TestOpenResyncsPromotedStateEpoch(t *testing.T) {
	dir := fsckDurableStore(t)
	jepoch, err := JournalEpoch(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeReplicaState(t, dir, map[string]any{
		"version": 2, "epoch": jepoch, "applied_seq": 3, "promoted": true,
	})
	st := openDurable(t, dir, DurableOptions{WAL: true})
	bumped := st.WAL().Epoch()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readStateEpoch(t, dir); got != bumped {
		t.Fatalf("state epoch after reopen = %d, want the bumped journal epoch %d", got, bumped)
	}
	rep, err := FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckClean {
		t.Fatalf("reopened promoted store graded %d: %v", rep.Severity(), findingPaths(rep))
	}
}
