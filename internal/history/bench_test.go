package history

import (
	"fmt"
	"testing"
)

func benchStoreDir(b *testing.B, n int) string {
	b.Helper()
	dir := b.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec := sampleRecord(fmt.Sprintf("run%03d", i))
		if err := st.Save(rec); err != nil {
			b.Fatal(err)
		}
	}
	return dir
}

// BenchmarkStoreQuery measures Query against the in-memory index: the
// store is opened (and its files decoded) once, then each query is a
// pure index read.
func BenchmarkStoreQuery(b *testing.B) {
	dir := benchStoreDir(b, 32)
	st, err := NewStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits, err := st.Query("poisson", "A", ResultFilter{State: "true"})
		if err != nil || len(hits) == 0 {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreQueryUncached is the pre-index behavior: every query
// re-reads and re-unmarshals every record file, as the old store did on
// each call.
func BenchmarkStoreQueryUncached(b *testing.B) {
	dir := benchStoreDir(b, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := NewStore(dir)
		if err != nil {
			b.Fatal(err)
		}
		hits, err := st.Query("poisson", "A", ResultFilter{State: "true"})
		if err != nil || len(hits) == 0 {
			b.Fatal(err)
		}
	}
}
