package history

import "fmt"

// QuarantinedEntry names one corrupt record OpenStore set aside, with
// the decode or read error that condemned it.
type QuarantinedEntry struct {
	// Name is the file basename, now under quarantine/.
	Name string
	// Reason is what was wrong with it.
	Reason string
}

func (q QuarantinedEntry) String() string { return fmt.Sprintf("%s: %s", q.Name, q.Reason) }

// RecoveryReport describes what crash recovery did when a store was
// opened: orphaned atomic-write temp files swept, and corrupt records
// quarantined (moved into quarantine/ with a REPORT.txt line each, not
// deleted — a human can inspect and restore them).
type RecoveryReport struct {
	SweptTemp   []string
	Quarantined []QuarantinedEntry
}

// Empty reports whether recovery found nothing to do.
func (r *RecoveryReport) Empty() bool {
	return r == nil || (len(r.SweptTemp) == 0 && len(r.Quarantined) == 0)
}

// Recovery returns the crash-recovery report of the OpenStore call that
// produced this store, or nil when the store was not opened through the
// recovering path (NewStore, NewMemStore, NewStoreWith).
func (s *Store) Recovery() *RecoveryReport {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.recovery
}

// recoverFS runs crash recovery over an open filesystem-backed store:
// sweep temp-file orphans, quarantine every entry the scan could not
// decode, and rescan so the surviving index is clean. Entries that
// cannot be quarantined (a read-only store, say) stay behind as plain
// scan issues — recovery degrades to the old skip-and-report behaviour
// rather than failing the open.
func (s *Store) recoverFS(b *FSBackend) (*RecoveryReport, error) {
	rep := &RecoveryReport{}
	swept, err := b.SweepTemp()
	rep.SweptTemp = swept
	if err != nil {
		return rep, err
	}
	issues := s.ScanIssues()
	if len(issues) == 0 {
		return rep, nil
	}
	for _, issue := range issues {
		if qerr := b.Quarantine(issue.Name, issue.Err.Error()); qerr != nil {
			continue
		}
		rep.Quarantined = append(rep.Quarantined, QuarantinedEntry{
			Name:   issue.Name,
			Reason: issue.Err.Error(),
		})
	}
	if len(rep.Quarantined) > 0 {
		// The quarantined files are gone from the scan now; rebuild the
		// index so ScanIssues reports only what recovery could not fix.
		if err := s.Refresh(); err != nil {
			return rep, err
		}
	}
	return rep, nil
}
