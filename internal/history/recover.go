package history

import "fmt"

// QuarantinedEntry names one corrupt record OpenStore set aside, with
// the decode or read error that condemned it.
type QuarantinedEntry struct {
	// Name is the file basename, now under quarantine/.
	Name string
	// Reason is what was wrong with it.
	Reason string
}

func (q QuarantinedEntry) String() string { return fmt.Sprintf("%s: %s", q.Name, q.Reason) }

// WALRecovery describes what the write-ahead-journal replay at open did:
// how much journal there was, how many folded entries had to be applied
// to the record files (zero when the crash lost nothing), whether the
// last segment ended mid-frame (normal residue of dying mid-append), and
// any frames that were corrupt elsewhere than the tail (never normal).
type WALRecovery struct {
	Segments int
	Entries  int
	Replayed int
	TornTail bool
	Corrupt  []string
}

// Empty reports whether the replay found nothing worth mentioning.
func (w *WALRecovery) Empty() bool {
	return w == nil || (w.Replayed == 0 && !w.TornTail && len(w.Corrupt) == 0)
}

// RecoveryReport describes what crash recovery did when a store was
// opened: orphaned atomic-write temp files swept, the write-ahead
// journal replayed (durable stores only; see WALRecovery), and corrupt
// records quarantined (moved into quarantine/ with a REPORT.txt line
// each, not deleted — a human can inspect and restore them).
type RecoveryReport struct {
	SweptTemp   []string
	Quarantined []QuarantinedEntry
	WAL         *WALRecovery
	// Shards carries per-shard detail for sharded stores (nil for a
	// single store); the aggregate fields above fold every shard
	// together with shards/NN/-prefixed names.
	Shards []*ShardRecovery
}

// Empty reports whether recovery found nothing to do.
func (r *RecoveryReport) Empty() bool {
	if r == nil {
		return true
	}
	for _, sr := range r.Shards {
		if sr.Err != "" {
			return false
		}
	}
	return len(r.SweptTemp) == 0 && len(r.Quarantined) == 0 && r.WAL.Empty()
}

// Recovery returns the crash-recovery report of the OpenStore call that
// produced this store, or nil when the store was not opened through the
// recovering path (NewStore, NewMemStore, NewStoreWith).
func (s *Store) Recovery() *RecoveryReport {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.recovery
}

// quarantinePass quarantines every entry the opening scan could not
// decode and rescans so the surviving index is clean, folding the moves
// into rep. It runs after the temp sweep and the journal replay, so only
// damage durability could not undo ends up quarantined. Entries that
// cannot be quarantined (a read-only store, say) stay behind as plain
// scan issues — recovery degrades to the old skip-and-report behaviour
// rather than failing the open.
func (s *Store) quarantinePass(b *FSBackend, rep *RecoveryReport) error {
	issues := s.ScanIssues()
	if len(issues) == 0 {
		return nil
	}
	for _, issue := range issues {
		if qerr := b.Quarantine(issue.Name, issue.Err.Error()); qerr != nil {
			continue
		}
		rep.Quarantined = append(rep.Quarantined, QuarantinedEntry{
			Name:   issue.Name,
			Reason: issue.Err.Error(),
		})
	}
	if len(rep.Quarantined) > 0 {
		// The quarantined files are gone from the scan now; rebuild the
		// index so ScanIssues reports only what recovery could not fix.
		if err := s.Refresh(); err != nil {
			return err
		}
	}
	return nil
}
