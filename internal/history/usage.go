package history

import (
	"repro/internal/resource"
	"repro/internal/sim"
)

// UsageCollector is a whole-trace observer that accumulates busy time per
// resource path, independent of the Performance Consultant's probes. Its
// output is the "raw data needed to test hypotheses postmortem" that the
// historic pruning directives are derived from.
type UsageCollector struct {
	seconds map[string]float64
	nprocs  int
}

// NewUsageCollector creates a collector for an application with nprocs
// processes.
func NewUsageCollector(nprocs int) *UsageCollector {
	return &UsageCollector{seconds: make(map[string]float64), nprocs: nprocs}
}

// OnInterval implements sim.Observer.
func (u *UsageCollector) OnInterval(iv sim.Interval) {
	d := iv.Duration()
	if d <= 0 {
		return
	}
	if iv.Module != "" {
		u.seconds["/"+resource.HierCode+"/"+iv.Module] += d
		if iv.Function != "" {
			u.seconds["/"+resource.HierCode+"/"+iv.Module+"/"+iv.Function] += d
		}
	}
	u.seconds["/"+resource.HierProcess+"/"+iv.Process] += d
	u.seconds["/"+resource.HierMachine+"/"+iv.Node] += d
	if iv.Tag != "" {
		u.seconds["/"+resource.HierSyncObject+"/Message"] += d
		u.seconds["/"+resource.HierSyncObject+"/Message/"+iv.Tag] += d
	}
}

// Fractions returns per-path fractions of total execution time
// (elapsed x nprocs) as of the given elapsed virtual time.
func (u *UsageCollector) Fractions(elapsed float64) map[string]float64 {
	out := make(map[string]float64, len(u.seconds))
	denom := elapsed * float64(u.nprocs)
	if denom <= 0 {
		return out
	}
	for k, v := range u.seconds {
		out[k] = v / denom
	}
	return out
}

// Seconds returns the raw per-path accumulated seconds.
func (u *UsageCollector) Seconds() map[string]float64 {
	out := make(map[string]float64, len(u.seconds))
	for k, v := range u.seconds {
		out[k] = v
	}
	return out
}
