package history

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fsckDurableStore builds a durable store with a few records and closes
// it, returning the directory — the "daemon exited cleanly" baseline.
func fsckDurableStore(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	st := openDurable(t, dir, DurableOptions{Create: true, WAL: true})
	for _, run := range []string{"r1", "r2", "r3"} {
		if err := st.Save(sampleRecord(run)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func findingPaths(rep *FsckReport) []string {
	var out []string
	for _, f := range rep.Findings {
		out = append(out, f.Path)
	}
	return out
}

func TestFsckCleanStore(t *testing.T) {
	dir := fsckDurableStore(t)
	rep, err := FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckClean || len(rep.Findings) != 0 {
		t.Fatalf("clean store graded %d with findings %v", rep.Severity(), findingPaths(rep))
	}
	if rep.Records != 3 {
		t.Fatalf("Records = %d, want 3", rep.Records)
	}
}

func TestFsckMissingDirErrors(t *testing.T) {
	if _, err := FsckStore(filepath.Join(t.TempDir(), "nope"), false); err == nil {
		t.Fatal("FsckStore of a missing directory did not error")
	}
}

func TestFsckTempOrphan(t *testing.T) {
	dir := fsckDurableStore(t)
	tmp := filepath.Join(dir, ".put-123.tmp")
	if err := os.WriteFile(tmp, []byte("half a record"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckResidue {
		t.Fatalf("temp orphan graded %d, want residue", rep.Severity())
	}
	// Repair removes it; the next pass is clean.
	if _, err := FsckStore(dir, true); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("repair left the temp orphan: %v", err)
	}
	rep, err = FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckClean {
		t.Fatalf("store after repair graded %d: %v", rep.Severity(), findingPaths(rep))
	}
}

func TestFsckInvalidRecordIsCorrupt(t *testing.T) {
	dir := fsckDurableStore(t)
	if err := os.WriteFile(filepath.Join(dir, "junk-x-y.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckCorrupt {
		t.Fatalf("invalid record graded %d, want corrupt", rep.Severity())
	}
	// Repair quarantines it with a REPORT.txt line; re-check accounts
	// for it cleanly.
	if _, err := FsckStore(dir, true); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir, "junk-x-y.json")); err != nil {
		t.Fatalf("repair did not quarantine the invalid record: %v", err)
	}
	rep, err = FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckClean {
		t.Fatalf("store after quarantine repair graded %d: %v", rep.Severity(), findingPaths(rep))
	}
	if rep.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", rep.Quarantined)
	}
}

func TestFsckMisnamedRecordIsCorrupt(t *testing.T) {
	dir := fsckDurableStore(t)
	// A valid record parked under a name its key does not map to.
	data, err := os.ReadFile(filepath.Join(dir, "poisson-A-r1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wrong-name-here.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckCorrupt {
		t.Fatalf("misnamed record graded %d, want corrupt: %v", rep.Severity(), findingPaths(rep))
	}
}

func TestFsckTornWALTail(t *testing.T) {
	dir := fsckDurableStore(t)
	// Reopen so the journal holds live entries, then tear its tail.
	st := openDurable(t, dir, DurableOptions{WAL: true})
	if err := st.Save(sampleRecord("r9")); err != nil {
		t.Fatal(err)
	}
	// Do NOT Close: a clean close is not required for a WAL store.
	segs, err := walSegments(walDirOf(dir))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	seg := filepath.Join(walDirOf(dir), segs[len(segs)-1])
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	rep, err := FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckResidue {
		t.Fatalf("torn tail graded %d, want residue: %v", rep.Severity(), findingPaths(rep))
	}
	// Repair truncates at the last valid frame; the journal then reads
	// cleanly and still agrees with disk.
	if _, err := FsckStore(dir, true); err != nil {
		t.Fatal(err)
	}
	rep, err = FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckClean {
		t.Fatalf("store after tail repair graded %d: %v", rep.Severity(), findingPaths(rep))
	}
}

func TestFsckUnappliedJournalEntry(t *testing.T) {
	dir := fsckDurableStore(t)
	st := openDurable(t, dir, DurableOptions{WAL: true})
	if err := st.Save(sampleRecord("r9")); err != nil {
		t.Fatal(err)
	}
	// Crash simulation: the journaled write vanishes from disk.
	if err := os.Remove(filepath.Join(dir, "poisson-A-r9.json")); err != nil {
		t.Fatal(err)
	}
	rep, err := FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckResidue {
		t.Fatalf("unapplied entry graded %d, want residue: %v", rep.Severity(), findingPaths(rep))
	}
	found := false
	for _, f := range rep.Findings {
		if strings.Contains(f.Problem, "journaled write missing") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no journaled-write-missing finding: %v", findingPaths(rep))
	}
	// Repair replays the entry; the record is back, byte-identical.
	if _, err := FsckStore(dir, true); err != nil {
		t.Fatal(err)
	}
	rep, err = FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckClean {
		t.Fatalf("store after replay repair graded %d: %v", rep.Severity(), findingPaths(rep))
	}
	if rep.Records != 4 {
		t.Fatalf("Records = %d after replay, want 4", rep.Records)
	}
}

// TestFsckTornRecordCoveredByWAL: a record torn on disk is NOT
// corruption when the journal holds its acknowledged bytes — it grades
// as residue and -repair replays it back byte-identical.
func TestFsckTornRecordCoveredByWAL(t *testing.T) {
	dir := fsckDurableStore(t)
	st := openDurable(t, dir, DurableOptions{WAL: true})
	if err := st.Save(sampleRecord("r9")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "poisson-A-r9.json")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, want[:len(want)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckResidue {
		t.Fatalf("WAL-covered torn record graded %d, want residue: %v", rep.Severity(), findingPaths(rep))
	}
	if _, err := FsckStore(dir, true); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("replay repair did not restore the record byte-identically")
	}
	rep, err = FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckClean {
		t.Fatalf("store after replay repair graded %d: %v", rep.Severity(), findingPaths(rep))
	}
}

func TestFsckCorruptMidJournal(t *testing.T) {
	dir := fsckDurableStore(t)
	st := openDurable(t, dir, DurableOptions{WAL: true})
	if err := st.Save(sampleRecord("r9")); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte mid-segment, then add a later segment so the
	// damage is not the journal's tail.
	segs, _ := walSegments(walDirOf(dir))
	seg := filepath.Join(walDirOf(dir), segs[len(segs)-1])
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(walDirOf(dir), "00000099.wal"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckCorrupt {
		t.Fatalf("mid-journal corruption graded %d, want corrupt: %v", rep.Severity(), findingPaths(rep))
	}
}

func TestFsckUnrecordedQuarantineFile(t *testing.T) {
	dir := fsckDurableStore(t)
	qdir := filepath.Join(dir, QuarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(qdir, "mystery.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckResidue {
		t.Fatalf("unrecorded quarantine file graded %d, want residue: %v", rep.Severity(), findingPaths(rep))
	}
	// Repair records it; accounting then balances.
	if _, err := FsckStore(dir, true); err != nil {
		t.Fatal(err)
	}
	rep, err = FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckClean {
		t.Fatalf("store after accounting repair graded %d: %v", rep.Severity(), findingPaths(rep))
	}
}

func TestFsckTornSessionEntry(t *testing.T) {
	dir := fsckDurableStore(t)
	sdir := filepath.Join(dir, "sessions")
	if err := os.MkdirAll(sdir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sdir, "k.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sdir, "ok.json"),
		[]byte(`{"key":"ok","state":"done","response":"cg=="}`), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckResidue {
		t.Fatalf("torn session entry graded %d, want residue: %v", rep.Severity(), findingPaths(rep))
	}
	if _, err := FsckStore(dir, true); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(sdir, "k.json")); !os.IsNotExist(err) {
		t.Fatalf("repair left the torn session entry: %v", err)
	}
	if _, err := os.Stat(filepath.Join(sdir, "ok.json")); err != nil {
		t.Fatalf("repair removed a healthy session entry: %v", err)
	}
}

func TestFsckShadowedDuplicate(t *testing.T) {
	dir := fsckDurableStore(t)
	// The same record under its legacy name alongside the escaped file —
	// residue of the naming migration. sampleRecord keys contain no
	// escapable bytes, so build one whose names differ.
	st := openDurable(t, dir, DurableOptions{WAL: true})
	rec := sampleRecord("r%odd")
	if err := st.Save(rec); err != nil {
		t.Fatal(err)
	}
	key := rec.Key()
	if fileName(key) == legacyFileName(key) {
		t.Fatalf("test key needs distinct escaped and legacy names")
	}
	data, err := os.ReadFile(filepath.Join(dir, fileName(key)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, legacyFileName(key)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	st.Close()

	rep, err := FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckResidue {
		t.Fatalf("shadowed duplicate graded %d, want residue: %v", rep.Severity(), findingPaths(rep))
	}
	if _, err := FsckStore(dir, true); err != nil {
		t.Fatal(err)
	}
	rep, err = FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckClean {
		t.Fatalf("store after duplicate repair graded %d: %v", rep.Severity(), findingPaths(rep))
	}
}
