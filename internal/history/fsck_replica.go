package history

import (
	"fmt"
	"os"
	"path/filepath"
)

// Cross-replica verification — pcfsck -primary. A follower replicates
// by folding the primary's journal byte for byte, so at any quiet
// moment its store must be a subset of the primary's fold with
// byte-identical records: a shared key whose bytes differ means the
// replication stream was corrupted or the follower wrote outside it —
// graded corrupt. A follower-only key is residue (a write the follower
// took after promotion, or one the primary lost); a primary-only key is
// residue too (replication lag at the moment of the check).

// FsckReplica verifies the follower store at followerDir against the
// primary store at primaryDir. Both directories may be single-store or
// sharded layouts; records are compared by key across the whole
// keyspace, so the shard counts need not match. Neither store should be
// open in a daemon.
func FsckReplica(followerDir, primaryDir string) (*FsckReport, error) {
	fol, err := foldStoreState(followerDir)
	if err != nil {
		return nil, fmt.Errorf("history: fsck replica: follower %s: %w", followerDir, err)
	}
	pri, err := foldStoreState(primaryDir)
	if err != nil {
		return nil, fmt.Errorf("history: fsck replica: primary %s: %w", primaryDir, err)
	}
	rep := &FsckReport{Dir: followerDir, Records: len(fol)}

	keys := make([]RecordKey, 0, len(fol))
	for k := range fol {
		keys = append(keys, k)
	}
	sortKeys(keys)
	for _, k := range keys {
		want, ok := pri[k]
		if !ok {
			rep.add(FsckResidue, fileName(k),
				fmt.Sprintf("record %s is not in the primary's fold (written after promotion, or lost by the primary)", k),
				"", false)
			continue
		}
		if string(fol[k]) != string(want) {
			rep.add(FsckCorrupt, fileName(k),
				fmt.Sprintf("record %s diverges from the primary's fold (%d vs %d bytes)", k, len(fol[k]), len(want)),
				"", false)
		}
	}
	missing := 0
	for k := range pri {
		if _, ok := fol[k]; !ok {
			missing++
		}
	}
	if missing > 0 {
		rep.add(FsckResidue, ".",
			fmt.Sprintf("follower lags the primary's fold by %d records", missing),
			"", false)
	}
	return rep, nil
}

// foldStoreState reconstructs a store's effective record state offline:
// the valid record files overlaid with the journal's fold (last
// acknowledged write per key), exactly the state OpenStore would serve.
// Sharded layouts merge every shard.
func foldStoreState(dir string) (map[RecordKey][]byte, error) {
	if _, err := os.Stat(dir); err != nil {
		return nil, err
	}
	if !IsShardedLayout(dir) {
		return foldSingleState(dir)
	}
	out := make(map[RecordKey][]byte)
	shardsDir := filepath.Join(dir, ShardsDirName)
	des, err := os.ReadDir(shardsDir)
	if err != nil {
		return nil, err
	}
	for _, de := range des {
		if !de.IsDir() {
			continue
		}
		if _, ok := parseShardDirName(de.Name()); !ok {
			continue
		}
		st, err := foldSingleState(filepath.Join(shardsDir, de.Name()))
		if err != nil {
			return nil, fmt.Errorf("shard %s: %w", de.Name(), err)
		}
		for k, v := range st {
			out[k] = v
		}
	}
	return out, nil
}

// foldSingleState reconstructs one plain store's state: indexed record
// bytes, then the journal fold on top (puts replace, deletes remove).
// Unreadable records and torn journal tails are plain fsck's findings,
// not this pass's — they are skipped here.
func foldSingleState(dir string) (map[RecordKey][]byte, error) {
	out := make(map[RecordKey][]byte)
	b := &FSBackend{dir: dir}
	entries, _, err := b.Scan()
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		rec, derr := decodeRecord(e.Data)
		if derr != nil {
			continue
		}
		out[rec.Key()] = e.Data
	}
	wentries, _, err := ReadWAL(filepath.Join(dir, WALDirName))
	if err != nil {
		return nil, err
	}
	for _, e := range wentries {
		switch e.Op {
		case walOpPut:
			out[e.Key()] = e.Data
		case walOpDelete:
			delete(out, e.Key())
		}
	}
	return out, nil
}
