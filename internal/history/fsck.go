package history

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Offline store verification — the engine behind cmd/pcfsck. FsckStore
// walks a store directory without opening it as a Store: record files,
// WAL framing and CRCs, WAL-vs-disk agreement, the session journal, and
// quarantine accounting. Findings are graded so the CLI can exit 0
// (clean), 1 (recoverable crash residue — what OpenStore would repair),
// or 2 (corruption — data that cannot be reconstructed from the store
// itself).

// Fsck severities.
const (
	FsckClean   = 0 // nothing to report
	FsckResidue = 1 // crash residue; recoverable mechanically
	FsckCorrupt = 2 // corruption; cannot be reconstructed
)

// FsckFinding is one problem fsck found.
type FsckFinding struct {
	// Severity is FsckResidue or FsckCorrupt.
	Severity int `json:"severity"`
	// Path is store-relative: a record basename, wal/<segment>, ...
	Path    string `json:"path"`
	Problem string `json:"problem"`
	// Repair describes the -repair action for this finding ("" when fsck
	// cannot repair it); Repaired reports whether it was taken.
	Repair   string `json:"repair,omitempty"`
	Repaired bool   `json:"repaired,omitempty"`
}

// FsckReport is the outcome of one FsckStore pass. For a sharded store
// the counters aggregate every shard, Findings holds only root-level
// problems (manifest, layout, records outside any shard), and the
// per-shard detail lives in Shards.
type FsckReport struct {
	Dir string `json:"dir"`
	// Records is the number of valid indexed records; Quarantined the
	// number of set-aside files.
	Records     int `json:"records"`
	Quarantined int `json:"quarantined"`
	// WALSegments/WALEntries count the readable journal.
	WALSegments int           `json:"wal_segments"`
	WALEntries  int           `json:"wal_entries"`
	Findings    []FsckFinding `json:"findings,omitempty"`
	// Sharded layout only: the manifest's shard count, the number of
	// records living on a shard their key does not hash to, and one
	// section per shard.
	Sharded    bool               `json:"sharded,omitempty"`
	ShardCount int                `json:"shard_count,omitempty"`
	Misplaced  int                `json:"misplaced,omitempty"`
	Shards     []*FsckShardReport `json:"shards,omitempty"`
}

// FsckShardReport is one shard's slice of a sharded fsck pass. Finding
// paths are shard-relative; the shard's directory is in Dir.
type FsckShardReport struct {
	Shard       int           `json:"shard"`
	Dir         string        `json:"dir"`
	Records     int           `json:"records"`
	Quarantined int           `json:"quarantined"`
	WALSegments int           `json:"wal_segments"`
	WALEntries  int           `json:"wal_entries"`
	Misplaced   int           `json:"misplaced"`
	Findings    []FsckFinding `json:"findings,omitempty"`
}

// Severity is the report's worst finding across the root and every
// shard section (FsckClean when none).
func (r *FsckReport) Severity() int {
	max := FsckClean
	for _, f := range r.Findings {
		if f.Severity > max {
			max = f.Severity
		}
	}
	for _, sh := range r.Shards {
		for _, f := range sh.Findings {
			if f.Severity > max {
				max = f.Severity
			}
		}
	}
	return max
}

func (r *FsckReport) add(sev int, path, problem, repair string, repaired bool) {
	r.Findings = append(r.Findings, FsckFinding{
		Severity: sev, Path: path, Problem: problem, Repair: repair, Repaired: repaired,
	})
}

// FsckStore verifies the store rooted at dir. With repair set, it also
// takes the per-finding repair action: temp orphans are removed, corrupt
// records quarantined, torn WAL tails truncated at the last valid frame,
// unapplied journal entries replayed, torn session-journal entries
// dropped, and unrecorded quarantine files logged. Repairs mirror what
// OpenStoreDurable does at open, so a repaired store opens clean.
func FsckStore(dir string, repair bool) (*FsckReport, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("history: fsck: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("history: fsck: %s is not a directory", dir)
	}
	if IsShardedLayout(dir) {
		return fsckSharded(dir, repair)
	}
	rep := &FsckReport{Dir: dir}

	fsckTempFiles(dir, ".put-", rep, "", repair)
	fold := fsckWALScan(dir, rep, repair)
	index := fsckRecords(dir, fold, rep, repair)
	fsckWALAgreement(dir, fold, index, rep, repair)
	fsckSessions(dir, rep, repair)
	fsckQuarantine(dir, rep, repair)
	fsckReplicaState(dir, rep, repair)
	return rep, nil
}

// fsckReplicaState cross-checks a promoted shard's replication state
// against the journal's epoch counter. A promoted node's replica/
// STATE.json epoch and wal/EPOCH must agree — promotion persists the
// journal epoch first, then the state, and every restart re-syncs — so
// a mismatch is crash residue from between the two writes. The journal
// is the authority (its epoch is what fencing compares), so -repair
// reconciles the state file to it. An UNpromoted follower's state epoch
// tracks its remote primary's journal, not the local one; no check
// applies.
func fsckReplicaState(dir string, rep *FsckReport, repair bool) {
	spath := filepath.Join(dir, "replica", "STATE.json")
	data, err := os.ReadFile(spath)
	if err != nil {
		return // no replication state — nothing to cross-check
	}
	var st map[string]any
	if err := json.Unmarshal(data, &st); err != nil {
		return // torn state is handled (restarted from zero) at open
	}
	promoted, _ := st["promoted"].(bool)
	if !promoted {
		return
	}
	stateEpoch := uint64(0)
	if v, ok := st["epoch"].(float64); ok {
		stateEpoch = uint64(v)
	}
	walEpoch, err := readWALEpoch(filepath.Join(dir, WALDirName))
	if err != nil || walEpoch == 0 {
		return // no journal to disagree with
	}
	if stateEpoch == walEpoch {
		return
	}
	repaired := false
	if repair {
		st["epoch"] = walEpoch
		if out, merr := json.MarshalIndent(st, "", "  "); merr == nil {
			tmp := spath + ".tmp"
			if os.WriteFile(tmp, append(out, '\n'), 0o644) == nil && os.Rename(tmp, spath) == nil {
				repaired = true
			}
		}
	}
	rep.add(FsckResidue, filepath.Join("replica", "STATE.json"),
		fmt.Sprintf("promoted shard's state epoch %d disagrees with journal epoch %d (crash between epoch bump and state persist)", stateEpoch, walEpoch),
		"reconcile state to the journal's epoch", repaired)
}

// fsckTempFiles flags (and with repair, removes) orphaned atomic-write
// temp files: ".put-*.tmp" in the store root, ".session-*.tmp" in the
// session journal. They are garbage by construction — a temp file is
// never published.
func fsckTempFiles(dir, prefix string, rep *FsckReport, rel string, repair bool) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".tmp") {
			continue
		}
		repaired := false
		if repair {
			repaired = os.Remove(filepath.Join(dir, name)) == nil
		}
		rep.add(FsckResidue, filepath.Join(rel, name),
			"orphaned atomic-write temp file (crash between write and rename)",
			"remove", repaired)
	}
}

// fsckRecords verifies every top-level .json record: it must parse,
// validate, and live under the name its key maps to (escaped or
// legacy). A broken record whose name is covered by a journaled put is
// NOT corruption — the journal can reconstruct it, and the agreement
// pass reports (and replays) it. Returns the indexed bytes per key
// (last-entry-wins, like Store.Refresh) for that pass.
func fsckRecords(dir string, fold map[RecordKey]WALEntry, rep *FsckReport, repair bool) map[RecordKey][]byte {
	index := make(map[RecordKey][]byte)
	healable := make(map[string]bool, len(fold))
	for k, e := range fold {
		if e.Op == walOpPut {
			healable[fileName(k)] = true
		}
	}
	b := &FSBackend{dir: dir}
	entries, issues, err := b.Scan()
	if err != nil {
		rep.add(FsckCorrupt, ".", fmt.Sprintf("cannot scan store: %v", err), "", false)
		return index
	}
	for _, is := range issues {
		if healable[is.Name] {
			continue
		}
		rep.add(FsckCorrupt, is.Name, fmt.Sprintf("unreadable record: %v", is.Err),
			"quarantine", repair && b.Quarantine(is.Name, "pcfsck: unreadable") == nil)
	}
	keyFiles := make(map[RecordKey][]string)
	for _, e := range entries {
		rec, derr := decodeRecord(e.Data)
		if derr != nil {
			if healable[e.Name] {
				continue // the agreement pass reports and replays it
			}
			rep.add(FsckCorrupt, e.Name, fmt.Sprintf("invalid record: %v", derr),
				"quarantine", repair && b.Quarantine(e.Name, "pcfsck: invalid record") == nil)
			continue
		}
		key := rec.Key()
		if e.Name != fileName(key) && e.Name != legacyFileName(key) {
			rep.add(FsckCorrupt, e.Name,
				fmt.Sprintf("name does not match record identity %s (want %s)", key, fileName(key)),
				"quarantine", repair && b.Quarantine(e.Name, "pcfsck: misnamed record") == nil)
			continue
		}
		index[key] = e.Data
		keyFiles[key] = append(keyFiles[key], e.Name)
	}
	rep.Records = len(index)
	// A key reachable under both its legacy and escaped names is crash
	// residue of the naming migration: the escaped file wins indexing,
	// the legacy one is a shadow.
	keys := make([]RecordKey, 0, len(keyFiles))
	for k := range keyFiles {
		keys = append(keys, k)
	}
	sortKeys(keys)
	for _, k := range keys {
		names := keyFiles[k]
		if len(names) < 2 {
			continue
		}
		sort.Strings(names)
		for _, name := range names {
			if name == fileName(k) {
				continue
			}
			rep.add(FsckResidue, name,
				fmt.Sprintf("shadowed duplicate of %s (same record key %s)", fileName(k), k),
				"quarantine", repair && b.Quarantine(name, "pcfsck: shadowed duplicate") == nil)
		}
	}
	return index
}

// fsckWALScan verifies journal framing and returns the folded journal
// (last acknowledged state per key) for the record and agreement
// passes.
func fsckWALScan(dir string, rep *FsckReport, repair bool) map[RecordKey]WALEntry {
	wdir := filepath.Join(dir, WALDirName)
	entries, scan, err := ReadWAL(wdir)
	if err != nil {
		rep.add(FsckCorrupt, WALDirName, fmt.Sprintf("cannot read journal: %v", err), "", false)
		return nil
	}
	rep.WALSegments, rep.WALEntries = scan.Segments, scan.Entries
	segs, _ := walSegments(wdir)
	if scan.TornTail && len(segs) > 0 {
		last := segs[len(segs)-1]
		path := filepath.Join(wdir, last)
		repaired := false
		if repair {
			repaired = truncateWALSegment(path) == nil
		}
		rep.add(FsckResidue, filepath.Join(WALDirName, last),
			"torn final frame (crash mid-append; the write was never acknowledged)",
			"truncate at last valid frame", repaired)
	}
	for _, c := range scan.Corrupt {
		seg := c
		if i := strings.Index(c, ":"); i >= 0 {
			seg = c[:i]
		}
		repaired := false
		if repair {
			repaired = truncateWALSegment(filepath.Join(wdir, seg)) == nil
		}
		rep.add(FsckCorrupt, filepath.Join(WALDirName, seg),
			"bad frame before the journal tail: "+c,
			"truncate at last valid frame (frames after it are lost)", repaired)
	}
	return WALFold(entries)
}

// fsckWALAgreement verifies that every acknowledged journal entry is
// reflected on disk. Disagreement is the residue of a crash between
// append and rename — exactly what replay repairs.
func fsckWALAgreement(dir string, fold map[RecordKey]WALEntry, index map[RecordKey][]byte, rep *FsckReport, repair bool) {
	keys := make([]RecordKey, 0, len(fold))
	for k := range fold {
		keys = append(keys, k)
	}
	sortKeys(keys)
	b := &FSBackend{dir: dir}
	for _, k := range keys {
		e := fold[k]
		cur, ok := index[k]
		var problem string
		switch {
		case e.Op == walOpPut && !ok:
			problem = "journaled write missing from disk"
		case e.Op == walOpPut && string(cur) != string(e.Data):
			problem = "record bytes differ from the journaled write"
		case e.Op == walOpDelete && ok:
			problem = "journaled delete still present on disk"
		default:
			continue
		}
		repaired := false
		if repair {
			_, rerr := replayWAL(b, []WALEntry{e})
			repaired = rerr == nil
		}
		rep.add(FsckResidue, fileName(k), problem, "replay journal entry", repaired)
	}
}

// truncateWALSegment cuts a segment back to the end of its last valid
// frame, dropping the torn or corrupt tail.
func truncateWALSegment(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	off := 0
	for off < len(data) {
		if len(data)-off < 8 {
			break
		}
		n := binary.BigEndian.Uint32(data[off:])
		sum := binary.BigEndian.Uint32(data[off+4:])
		if n == 0 || n > maxWALFrame || len(data)-off-8 < int(n) {
			break
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var e WALEntry
		if json.Unmarshal(payload, &e) != nil || (e.Op != walOpPut && e.Op != walOpDelete) {
			break
		}
		off += 8 + int(n)
	}
	if off == len(data) {
		return nil // nothing to cut
	}
	return os.Truncate(path, int64(off))
}

// fsckSharded verifies a sharded store end-to-end: the layout manifest,
// a full single-store pass per shard, the cross-shard placement
// invariant (every record lives on the shard its key hashes to), the
// shared session journal at the root, and stray files at the root or in
// shards/. With repair, per-shard repairs run as usual and misplaced or
// root-level records are moved onto their home shard — which is also
// the migration path: drop a legacy store's record files at the root
// and -repair distributes them onto the ring.
func fsckSharded(dir string, repair bool) (*FsckReport, error) {
	rep := &FsckReport{Dir: dir, Sharded: true}
	shardsDir := filepath.Join(dir, ShardsDirName)
	manifestRel := filepath.Join(ShardsDirName, shardManifestName)

	n := 0
	data, err := os.ReadFile(filepath.Join(shardsDir, shardManifestName))
	switch {
	case err == nil:
		var m shardManifest
		if jerr := json.Unmarshal(data, &m); jerr != nil {
			rep.add(FsckCorrupt, manifestRel, fmt.Sprintf("corrupt manifest: %v", jerr), "", false)
		} else if m.Hash != shardHashScheme {
			rep.add(FsckCorrupt, manifestRel, fmt.Sprintf("unknown hash scheme %q (want %q)", m.Hash, shardHashScheme), "", false)
		} else if m.Shards < 1 {
			rep.add(FsckCorrupt, manifestRel, fmt.Sprintf("implausible shard count %d", m.Shards), "", false)
		} else {
			n = m.Shards
		}
	case os.IsNotExist(err):
		rep.add(FsckCorrupt, manifestRel, "manifest missing (shard count and hash scheme unpinned)", "", false)
	default:
		rep.add(FsckCorrupt, manifestRel, fmt.Sprintf("unreadable manifest: %v", err), "", false)
	}
	if n == 0 {
		// No trustworthy manifest: infer the count from the NN
		// directories so the per-shard and placement passes still run
		// against the best available witness of the ring size.
		n = inferShardCount(shardsDir)
	}
	rep.ShardCount = n

	fsckTempFiles(dir, ".put-", rep, "", repair)
	fsckRootRecords(dir, n, rep, repair)
	fsckSessions(dir, rep, repair)
	fsckShardsDirStrays(shardsDir, n, rep)

	for i := 0; i < n; i++ {
		sdir := filepath.Join(shardsDir, shardDirName(i))
		rel := filepath.Join(ShardsDirName, shardDirName(i))
		if fi, serr := os.Stat(sdir); serr != nil || !fi.IsDir() {
			rep.add(FsckCorrupt, rel, "shard directory missing (records hashed to it are unreachable)", "", false)
			rep.Shards = append(rep.Shards, &FsckShardReport{Shard: i, Dir: sdir})
			continue
		}
		srep, serr := FsckStore(sdir, repair)
		if serr != nil {
			rep.add(FsckCorrupt, rel, fmt.Sprintf("cannot fsck shard: %v", serr), "", false)
			rep.Shards = append(rep.Shards, &FsckShardReport{Shard: i, Dir: sdir})
			continue
		}
		shard := &FsckShardReport{
			Shard: i, Dir: sdir,
			Records: srep.Records, Quarantined: srep.Quarantined,
			WALSegments: srep.WALSegments, WALEntries: srep.WALEntries,
			Findings: srep.Findings,
		}
		fsckShardPlacement(shardsDir, i, n, shard, repair)
		rep.Records += shard.Records
		rep.Quarantined += shard.Quarantined
		rep.WALSegments += shard.WALSegments
		rep.WALEntries += shard.WALEntries
		rep.Misplaced += shard.Misplaced
		rep.Shards = append(rep.Shards, shard)
	}
	return rep, nil
}

// inferShardCount infers the ring size from the NN directories when the
// manifest cannot be trusted.
func inferShardCount(shardsDir string) int {
	des, err := os.ReadDir(shardsDir)
	if err != nil {
		return 0
	}
	max := -1
	for _, de := range des {
		if !de.IsDir() {
			continue
		}
		if i, ok := parseShardDirName(de.Name()); ok && i > max {
			max = i
		}
	}
	return max + 1
}

// parseShardDirName parses a zero-padded NN shard directory name.
func parseShardDirName(name string) (int, bool) {
	if len(name) != 2 || name[0] < '0' || name[0] > '9' || name[1] < '0' || name[1] > '9' {
		return 0, false
	}
	return int(name[0]-'0')*10 + int(name[1]-'0'), true
}

// fsckShardPlacement verifies that every readable record in shard i
// hashes to shard i. A misplaced record is residue, not corruption —
// the bytes are intact, but point reads miss it and a Save would
// duplicate it — and -repair moves it home (unless a record already
// holds that spot, which needs a human).
func fsckShardPlacement(shardsDir string, i, n int, shard *FsckShardReport, repair bool) {
	if n <= 1 {
		return
	}
	sdir := filepath.Join(shardsDir, shardDirName(i))
	b := &FSBackend{dir: sdir}
	entries, _, err := b.Scan()
	if err != nil {
		return // the per-shard pass already reported the scan failure
	}
	for _, e := range entries {
		rec, derr := decodeRecord(e.Data)
		if derr != nil {
			continue // already reported by the per-shard pass
		}
		key := rec.Key()
		if e.Name != fileName(key) && e.Name != legacyFileName(key) {
			continue // misnamed: already reported
		}
		want := ShardForKey(key.App, key.Version, n)
		if want == i {
			continue
		}
		shard.Misplaced++
		dest := filepath.Join(shardsDir, shardDirName(want), fileName(key))
		repaired := false
		if repair {
			if _, serr := os.Stat(dest); os.IsNotExist(serr) {
				repaired = os.Rename(filepath.Join(sdir, e.Name), dest) == nil
			}
		}
		shard.Findings = append(shard.Findings, FsckFinding{
			Severity: FsckResidue,
			Path:     e.Name,
			Problem:  fmt.Sprintf("record %s hashes to shard %s (point reads miss it; a Save would duplicate it)", key, shardDirName(want)),
			Repair:   "move to " + filepath.Join(ShardsDirName, shardDirName(want)),
			Repaired: repaired,
		})
	}
}

// fsckRootRecords flags record files sitting at the root of a sharded
// store, outside any shard, and with repair moves readable ones onto
// the shard their key hashes to.
func fsckRootRecords(dir string, n int, rep *FsckReport, repair bool) {
	b := &FSBackend{dir: dir}
	entries, issues, err := b.Scan()
	if err != nil {
		return
	}
	for _, is := range issues {
		rep.add(FsckCorrupt, is.Name, fmt.Sprintf("unreadable record outside the shard layout: %v", is.Err),
			"quarantine", repair && b.Quarantine(is.Name, "pcfsck: unreadable") == nil)
	}
	for _, e := range entries {
		rec, derr := decodeRecord(e.Data)
		if derr != nil {
			rep.add(FsckCorrupt, e.Name, fmt.Sprintf("invalid record outside the shard layout: %v", derr),
				"quarantine", repair && b.Quarantine(e.Name, "pcfsck: invalid record") == nil)
			continue
		}
		key := rec.Key()
		want := ShardForKey(key.App, key.Version, n)
		repaired := false
		if repair && n > 0 {
			dest := filepath.Join(dir, ShardsDirName, shardDirName(want), fileName(key))
			if _, serr := os.Stat(dest); os.IsNotExist(serr) {
				repaired = os.Rename(filepath.Join(dir, e.Name), dest) == nil
			}
		}
		rep.add(FsckResidue, e.Name,
			fmt.Sprintf("record %s outside the shard layout", key),
			"move to "+filepath.Join(ShardsDirName, shardDirName(want)), repaired)
	}
}

// fsckShardsDirStrays flags entries in shards/ that are neither the
// manifest nor a shard directory on the ring.
func fsckShardsDirStrays(shardsDir string, n int, rep *FsckReport) {
	des, err := os.ReadDir(shardsDir)
	if err != nil {
		return
	}
	for _, de := range des {
		name := de.Name()
		if name == shardManifestName {
			continue
		}
		if i, ok := parseShardDirName(name); ok && de.IsDir() && i < n {
			continue
		}
		rep.add(FsckResidue, filepath.Join(ShardsDirName, name),
			"unexpected entry in the shard layout", "", false)
	}
}

// fsckSessions verifies the session journal (when present): every entry
// must be parseable JSON with a plausible state. The record schema is
// owned by the server package, so fsck checks shape, not content.
func fsckSessions(dir string, rep *FsckReport, repair bool) {
	sdir := filepath.Join(dir, "sessions")
	des, err := os.ReadDir(sdir)
	if err != nil {
		return // no session journal — nothing to verify
	}
	fsckTempFiles(sdir, ".session-", rep, "sessions", repair)
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		path := filepath.Join(sdir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			rep.add(FsckCorrupt, filepath.Join("sessions", name),
				fmt.Sprintf("unreadable session entry: %v", err), "", false)
			continue
		}
		var entry struct {
			State string `json:"state"`
		}
		if json.Unmarshal(data, &entry) != nil || (entry.State != "pending" && entry.State != "done") {
			repaired := false
			if repair {
				repaired = os.Remove(path) == nil
			}
			rep.add(FsckResidue, filepath.Join("sessions", name),
				"torn session-journal entry (never acknowledged)", "remove", repaired)
		}
	}
}

// fsckQuarantine checks quarantine accounting: every set-aside file must
// have a REPORT.txt line saying why.
func fsckQuarantine(dir string, rep *FsckReport, repair bool) {
	qdir := filepath.Join(dir, QuarantineDir)
	des, err := os.ReadDir(qdir)
	if err != nil {
		return // no quarantine — nothing to account for
	}
	recorded := make(map[string]bool)
	rpath := filepath.Join(qdir, quarantineReport)
	if data, err := os.ReadFile(rpath); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, _, ok := strings.Cut(line, "\t"); ok {
				recorded[name] = true
			}
		}
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || name == quarantineReport {
			continue
		}
		rep.Quarantined++
		if strings.HasPrefix(name, "DIVERGENCE-") {
			// A demoted primary's truncated WAL tail: writes from a fenced
			// epoch the new generation does not hold. Always surfaced —
			// the whole point is that the loss is auditable, not silent —
			// and never auto-cleared; an operator inspects and deletes.
			rep.add(FsckResidue, filepath.Join(QuarantineDir, name),
				"diverged writes from a fenced epoch, truncated at rejoin", "", false)
			continue
		}
		if recorded[name] {
			continue
		}
		repaired := false
		if repair {
			if f, err := os.OpenFile(rpath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644); err == nil {
				fmt.Fprintf(f, "%s\t%s\n", name, "pcfsck: quarantined by an earlier run; reason not recorded")
				f.Close()
				repaired = true
			}
		}
		rep.add(FsckResidue, filepath.Join(QuarantineDir, name),
			"quarantined file with no REPORT.txt entry", "record in REPORT.txt", repaired)
	}
}
