package history

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Offline store verification — the engine behind cmd/pcfsck. FsckStore
// walks a store directory without opening it as a Store: record files,
// WAL framing and CRCs, WAL-vs-disk agreement, the session journal, and
// quarantine accounting. Findings are graded so the CLI can exit 0
// (clean), 1 (recoverable crash residue — what OpenStore would repair),
// or 2 (corruption — data that cannot be reconstructed from the store
// itself).

// Fsck severities.
const (
	FsckClean   = 0 // nothing to report
	FsckResidue = 1 // crash residue; recoverable mechanically
	FsckCorrupt = 2 // corruption; cannot be reconstructed
)

// FsckFinding is one problem fsck found.
type FsckFinding struct {
	// Severity is FsckResidue or FsckCorrupt.
	Severity int `json:"severity"`
	// Path is store-relative: a record basename, wal/<segment>, ...
	Path    string `json:"path"`
	Problem string `json:"problem"`
	// Repair describes the -repair action for this finding ("" when fsck
	// cannot repair it); Repaired reports whether it was taken.
	Repair   string `json:"repair,omitempty"`
	Repaired bool   `json:"repaired,omitempty"`
}

// FsckReport is the outcome of one FsckStore pass.
type FsckReport struct {
	Dir string `json:"dir"`
	// Records is the number of valid indexed records; Quarantined the
	// number of set-aside files.
	Records     int `json:"records"`
	Quarantined int `json:"quarantined"`
	// WALSegments/WALEntries count the readable journal.
	WALSegments int           `json:"wal_segments"`
	WALEntries  int           `json:"wal_entries"`
	Findings    []FsckFinding `json:"findings,omitempty"`
}

// Severity is the report's worst finding (FsckClean when none).
func (r *FsckReport) Severity() int {
	max := FsckClean
	for _, f := range r.Findings {
		if f.Severity > max {
			max = f.Severity
		}
	}
	return max
}

func (r *FsckReport) add(sev int, path, problem, repair string, repaired bool) {
	r.Findings = append(r.Findings, FsckFinding{
		Severity: sev, Path: path, Problem: problem, Repair: repair, Repaired: repaired,
	})
}

// FsckStore verifies the store rooted at dir. With repair set, it also
// takes the per-finding repair action: temp orphans are removed, corrupt
// records quarantined, torn WAL tails truncated at the last valid frame,
// unapplied journal entries replayed, torn session-journal entries
// dropped, and unrecorded quarantine files logged. Repairs mirror what
// OpenStoreDurable does at open, so a repaired store opens clean.
func FsckStore(dir string, repair bool) (*FsckReport, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("history: fsck: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("history: fsck: %s is not a directory", dir)
	}
	rep := &FsckReport{Dir: dir}

	fsckTempFiles(dir, ".put-", rep, "", repair)
	fold := fsckWALScan(dir, rep, repair)
	index := fsckRecords(dir, fold, rep, repair)
	fsckWALAgreement(dir, fold, index, rep, repair)
	fsckSessions(dir, rep, repair)
	fsckQuarantine(dir, rep, repair)
	return rep, nil
}

// fsckTempFiles flags (and with repair, removes) orphaned atomic-write
// temp files: ".put-*.tmp" in the store root, ".session-*.tmp" in the
// session journal. They are garbage by construction — a temp file is
// never published.
func fsckTempFiles(dir, prefix string, rep *FsckReport, rel string, repair bool) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".tmp") {
			continue
		}
		repaired := false
		if repair {
			repaired = os.Remove(filepath.Join(dir, name)) == nil
		}
		rep.add(FsckResidue, filepath.Join(rel, name),
			"orphaned atomic-write temp file (crash between write and rename)",
			"remove", repaired)
	}
}

// fsckRecords verifies every top-level .json record: it must parse,
// validate, and live under the name its key maps to (escaped or
// legacy). A broken record whose name is covered by a journaled put is
// NOT corruption — the journal can reconstruct it, and the agreement
// pass reports (and replays) it. Returns the indexed bytes per key
// (last-entry-wins, like Store.Refresh) for that pass.
func fsckRecords(dir string, fold map[RecordKey]WALEntry, rep *FsckReport, repair bool) map[RecordKey][]byte {
	index := make(map[RecordKey][]byte)
	healable := make(map[string]bool, len(fold))
	for k, e := range fold {
		if e.Op == walOpPut {
			healable[fileName(k)] = true
		}
	}
	b := &FSBackend{dir: dir}
	entries, issues, err := b.Scan()
	if err != nil {
		rep.add(FsckCorrupt, ".", fmt.Sprintf("cannot scan store: %v", err), "", false)
		return index
	}
	for _, is := range issues {
		if healable[is.Name] {
			continue
		}
		rep.add(FsckCorrupt, is.Name, fmt.Sprintf("unreadable record: %v", is.Err),
			"quarantine", repair && b.Quarantine(is.Name, "pcfsck: unreadable") == nil)
	}
	keyFiles := make(map[RecordKey][]string)
	for _, e := range entries {
		rec, derr := decodeRecord(e.Data)
		if derr != nil {
			if healable[e.Name] {
				continue // the agreement pass reports and replays it
			}
			rep.add(FsckCorrupt, e.Name, fmt.Sprintf("invalid record: %v", derr),
				"quarantine", repair && b.Quarantine(e.Name, "pcfsck: invalid record") == nil)
			continue
		}
		key := rec.Key()
		if e.Name != fileName(key) && e.Name != legacyFileName(key) {
			rep.add(FsckCorrupt, e.Name,
				fmt.Sprintf("name does not match record identity %s (want %s)", key, fileName(key)),
				"quarantine", repair && b.Quarantine(e.Name, "pcfsck: misnamed record") == nil)
			continue
		}
		index[key] = e.Data
		keyFiles[key] = append(keyFiles[key], e.Name)
	}
	rep.Records = len(index)
	// A key reachable under both its legacy and escaped names is crash
	// residue of the naming migration: the escaped file wins indexing,
	// the legacy one is a shadow.
	keys := make([]RecordKey, 0, len(keyFiles))
	for k := range keyFiles {
		keys = append(keys, k)
	}
	sortKeys(keys)
	for _, k := range keys {
		names := keyFiles[k]
		if len(names) < 2 {
			continue
		}
		sort.Strings(names)
		for _, name := range names {
			if name == fileName(k) {
				continue
			}
			rep.add(FsckResidue, name,
				fmt.Sprintf("shadowed duplicate of %s (same record key %s)", fileName(k), k),
				"quarantine", repair && b.Quarantine(name, "pcfsck: shadowed duplicate") == nil)
		}
	}
	return index
}

// fsckWALScan verifies journal framing and returns the folded journal
// (last acknowledged state per key) for the record and agreement
// passes.
func fsckWALScan(dir string, rep *FsckReport, repair bool) map[RecordKey]WALEntry {
	wdir := filepath.Join(dir, WALDirName)
	entries, scan, err := ReadWAL(wdir)
	if err != nil {
		rep.add(FsckCorrupt, WALDirName, fmt.Sprintf("cannot read journal: %v", err), "", false)
		return nil
	}
	rep.WALSegments, rep.WALEntries = scan.Segments, scan.Entries
	segs, _ := walSegments(wdir)
	if scan.TornTail && len(segs) > 0 {
		last := segs[len(segs)-1]
		path := filepath.Join(wdir, last)
		repaired := false
		if repair {
			repaired = truncateWALSegment(path) == nil
		}
		rep.add(FsckResidue, filepath.Join(WALDirName, last),
			"torn final frame (crash mid-append; the write was never acknowledged)",
			"truncate at last valid frame", repaired)
	}
	for _, c := range scan.Corrupt {
		seg := c
		if i := strings.Index(c, ":"); i >= 0 {
			seg = c[:i]
		}
		repaired := false
		if repair {
			repaired = truncateWALSegment(filepath.Join(wdir, seg)) == nil
		}
		rep.add(FsckCorrupt, filepath.Join(WALDirName, seg),
			"bad frame before the journal tail: "+c,
			"truncate at last valid frame (frames after it are lost)", repaired)
	}
	return WALFold(entries)
}

// fsckWALAgreement verifies that every acknowledged journal entry is
// reflected on disk. Disagreement is the residue of a crash between
// append and rename — exactly what replay repairs.
func fsckWALAgreement(dir string, fold map[RecordKey]WALEntry, index map[RecordKey][]byte, rep *FsckReport, repair bool) {
	keys := make([]RecordKey, 0, len(fold))
	for k := range fold {
		keys = append(keys, k)
	}
	sortKeys(keys)
	b := &FSBackend{dir: dir}
	for _, k := range keys {
		e := fold[k]
		cur, ok := index[k]
		var problem string
		switch {
		case e.Op == walOpPut && !ok:
			problem = "journaled write missing from disk"
		case e.Op == walOpPut && string(cur) != string(e.Data):
			problem = "record bytes differ from the journaled write"
		case e.Op == walOpDelete && ok:
			problem = "journaled delete still present on disk"
		default:
			continue
		}
		repaired := false
		if repair {
			_, rerr := replayWAL(b, []WALEntry{e})
			repaired = rerr == nil
		}
		rep.add(FsckResidue, fileName(k), problem, "replay journal entry", repaired)
	}
}

// truncateWALSegment cuts a segment back to the end of its last valid
// frame, dropping the torn or corrupt tail.
func truncateWALSegment(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	off := 0
	for off < len(data) {
		if len(data)-off < 8 {
			break
		}
		n := binary.BigEndian.Uint32(data[off:])
		sum := binary.BigEndian.Uint32(data[off+4:])
		if n == 0 || n > maxWALFrame || len(data)-off-8 < int(n) {
			break
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var e WALEntry
		if json.Unmarshal(payload, &e) != nil || (e.Op != walOpPut && e.Op != walOpDelete) {
			break
		}
		off += 8 + int(n)
	}
	if off == len(data) {
		return nil // nothing to cut
	}
	return os.Truncate(path, int64(off))
}

// fsckSessions verifies the session journal (when present): every entry
// must be parseable JSON with a plausible state. The record schema is
// owned by the server package, so fsck checks shape, not content.
func fsckSessions(dir string, rep *FsckReport, repair bool) {
	sdir := filepath.Join(dir, "sessions")
	des, err := os.ReadDir(sdir)
	if err != nil {
		return // no session journal — nothing to verify
	}
	fsckTempFiles(sdir, ".session-", rep, "sessions", repair)
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		path := filepath.Join(sdir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			rep.add(FsckCorrupt, filepath.Join("sessions", name),
				fmt.Sprintf("unreadable session entry: %v", err), "", false)
			continue
		}
		var entry struct {
			State string `json:"state"`
		}
		if json.Unmarshal(data, &entry) != nil || (entry.State != "pending" && entry.State != "done") {
			repaired := false
			if repair {
				repaired = os.Remove(path) == nil
			}
			rep.add(FsckResidue, filepath.Join("sessions", name),
				"torn session-journal entry (never acknowledged)", "remove", repaired)
		}
	}
}

// fsckQuarantine checks quarantine accounting: every set-aside file must
// have a REPORT.txt line saying why.
func fsckQuarantine(dir string, rep *FsckReport, repair bool) {
	qdir := filepath.Join(dir, QuarantineDir)
	des, err := os.ReadDir(qdir)
	if err != nil {
		return // no quarantine — nothing to account for
	}
	recorded := make(map[string]bool)
	rpath := filepath.Join(qdir, quarantineReport)
	if data, err := os.ReadFile(rpath); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, _, ok := strings.Cut(line, "\t"); ok {
				recorded[name] = true
			}
		}
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || name == quarantineReport {
			continue
		}
		rep.Quarantined++
		if recorded[name] {
			continue
		}
		repaired := false
		if repair {
			if f, err := os.OpenFile(rpath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644); err == nil {
				fmt.Fprintf(f, "%s\t%s\n", name, "pcfsck: quarantined by an earlier run; reason not recorded")
				f.Close()
				repaired = true
			}
		}
		rep.add(FsckResidue, filepath.Join(QuarantineDir, name),
			"quarantined file with no REPORT.txt entry", "record in REPORT.txt", repaired)
	}
}
