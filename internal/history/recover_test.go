package history

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeStoreFile drops raw bytes into a store directory under name.
func writeStoreFile(t *testing.T, dir, name string, data []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestOpenStoreSweepsOrphanedTemp proves crash recovery reclaims the
// temp files an interrupted atomic write leaves behind.
func TestOpenStoreSweepsOrphanedTemp(t *testing.T) {
	dir := t.TempDir()
	st0, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st0.Save(sampleRecord("r1")); err != nil {
		t.Fatal(err)
	}
	writeStoreFile(t, dir, ".put-123.tmp", []byte("half a rec"))
	writeStoreFile(t, dir, ".put-456.tmp", nil)

	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep := st.Recovery()
	if rep == nil || len(rep.SweptTemp) != 2 {
		t.Fatalf("recovery report = %+v, want 2 swept temp files", rep)
	}
	for _, name := range rep.SweptTemp {
		if _, err := os.Stat(filepath.Join(dir, name)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("swept temp file %s still present", name)
		}
	}
	if st.Len() != 1 {
		t.Errorf("store holds %d records after sweep, want 1", st.Len())
	}
}

// TestOpenStoreQuarantinesCorruptRecords is the quarantine round trip:
// corrupt files are moved aside (not deleted) with a report, a rescan is
// clean, and a hand-repaired file moved back is indexed again.
func TestOpenStoreQuarantinesCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	st0, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := sampleRecord("good")
	if err := st0.Save(good); err != nil {
		t.Fatal(err)
	}
	// A torn write (truncated JSON) and garbage bytes.
	full, err := json.MarshalIndent(sampleRecord("torn"), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	writeStoreFile(t, dir, "poisson-A-torn.json", full[:len(full)/2])
	writeStoreFile(t, dir, "poisson-A-junk.json", []byte("not json at all"))

	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep := st.Recovery()
	if rep == nil || len(rep.Quarantined) != 2 {
		t.Fatalf("recovery report = %+v, want 2 quarantined entries", rep)
	}
	// The index is clean: only the good record, no lingering issues.
	if st.Len() != 1 {
		t.Errorf("store holds %d records, want 1", st.Len())
	}
	if issues := st.ScanIssues(); len(issues) != 0 {
		t.Errorf("scan issues remain after quarantine: %v", issues)
	}
	// The files moved into quarantine/ byte-for-byte, and the report
	// names them with reasons.
	qdir := filepath.Join(dir, QuarantineDir)
	torn, err := os.ReadFile(filepath.Join(qdir, "poisson-A-torn.json"))
	if err != nil {
		t.Fatalf("quarantined file unreadable: %v", err)
	}
	if string(torn) != string(full[:len(full)/2]) {
		t.Error("quarantine altered the corrupt bytes")
	}
	report, err := os.ReadFile(filepath.Join(qdir, "REPORT.txt"))
	if err != nil {
		t.Fatalf("quarantine report missing: %v", err)
	}
	for _, name := range []string{"poisson-A-torn.json", "poisson-A-junk.json"} {
		if !strings.Contains(string(report), name) {
			t.Errorf("report does not mention %s:\n%s", name, report)
		}
	}

	// Restore by hand: repair the torn record and move it back.
	if err := os.WriteFile(filepath.Join(dir, "poisson-A-torn.json"), full, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Recovery().Empty() {
		t.Errorf("second recovery not clean: %+v", st2.Recovery())
	}
	if st2.Len() != 2 {
		t.Errorf("restored store holds %d records, want 2", st2.Len())
	}
	if _, err := st2.Load("poisson", "A", "torn"); err != nil {
		t.Errorf("restored record not loadable: %v", err)
	}
}

// TestOpenStoreRecoversTornFaultInjection drives the full crash story
// through the injector: a torn write through a FaultBackend over a real
// FSBackend leaves a truncated record on disk, and the next OpenStore
// quarantines it.
func TestOpenStoreRecoversTornFaultInjection(t *testing.T) {
	dir := t.TempDir()
	fsb, err := NewFSBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	fb := NewFaultBackend(fsb, FaultConfig{Seed: 11, TornWriteRate: 1})
	st, err := NewStoreWith(fb)
	if err != nil {
		t.Fatal(err)
	}
	err = st.Save(sampleRecord("torn"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Save through torn injector = %v, want injected failure", err)
	}

	reopened, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep := reopened.Recovery()
	if rep == nil || len(rep.Quarantined) != 1 {
		t.Fatalf("recovery report = %+v, want 1 quarantined torn record", rep)
	}
	if reopened.Len() != 0 {
		t.Errorf("torn record made it into the index")
	}
}

// TestFSBackendRenameFailureCleansTemp is the regression test for the
// atomic-write cleanup path: when the commit rename itself fails, the
// temp file must not survive. The rename fault is injected through the
// backend's hook so the failure is precise and repeatable.
func TestFSBackendRenameFailureCleansTemp(t *testing.T) {
	dir := t.TempDir()
	b, err := NewFSBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	renameErr := errors.New("injected rename failure")
	b.renameHook = func(oldpath, newpath string) error { return renameErr }

	err = b.Put(RecordKey{App: "a", RunID: "r"}, []byte("{}"))
	if !errors.Is(err, renameErr) {
		t.Fatalf("Put with failing rename = %v, want the injected error", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("failed Put left files behind: %v", names)
	}

	// A recovering open of the same directory is a no-op.
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Recovery().Empty() {
		t.Errorf("recovery found leftovers: %+v", st.Recovery())
	}
}
