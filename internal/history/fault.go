package history

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrInjected is the sentinel every fault the FaultBackend injects wraps.
// Tests and retry layers classify injected failures with
// errors.Is(err, ErrInjected).
var ErrInjected = errors.New("injected fault")

// BackendError marks an error as coming from the storage engine beneath
// the Store façade — an I/O failure, an injected fault — as opposed to a
// caller error (invalid record, bad key). The diagnosis service uses the
// distinction to enter degraded mode on storage trouble without treating
// every bad request as an outage.
//
// The wrapper is classification only: Error() returns the underlying
// message unchanged, so CLI output and log lines read exactly as before.
type BackendError struct {
	// Op is the backend operation that failed: "put", "get", "delete",
	// "scan".
	Op  string
	Err error
}

func (e *BackendError) Error() string { return e.Err.Error() }

// Unwrap keeps errors.Is working through the wrapper (os.ErrNotExist,
// ErrInjected, syscall errnos).
func (e *BackendError) Unwrap() error { return e.Err }

// IsBackendError reports whether err originated in a storage backend.
func IsBackendError(err error) bool {
	var be *BackendError
	return errors.As(err, &be)
}

// IsTransient reports whether err is worth retrying: an injected fault,
// or a backend I/O failure that is not a definitive miss. Validation and
// parse errors are never transient.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrInjected) {
		return true
	}
	var be *BackendError
	if errors.As(err, &be) {
		// A missing record is a definitive answer, not a fault.
		return !errors.Is(err, os.ErrNotExist)
	}
	return false
}

// FaultConfig parameterizes a FaultBackend. All rates are probabilities
// in [0, 1] evaluated independently per operation from the seeded PRNG —
// no wall-clock randomness, so a fixed Seed reproduces the exact fault
// schedule.
type FaultConfig struct {
	// Seed seeds the deterministic fault schedule.
	Seed int64
	// ErrRate is the probability that any operation (Put, Get, Delete,
	// Scan) fails with a generic injected I/O error.
	ErrRate float64
	// TornWriteRate is the probability that a Put writes only a prefix
	// of the record to the inner backend before failing — the torn-write
	// crash the recovery sweep must cope with.
	TornWriteRate float64
	// ENOSPCRate is the probability that a Put fails as if the device
	// were full (wraps syscall.ENOSPC).
	ENOSPCRate float64
	// Latency is added to every operation when non-zero. Keep it zero in
	// unit tests; it exists for soak runs that want realistic slowness.
	Latency time.Duration
}

// FaultCounters counts what a FaultBackend injected, exported so tests
// and /statsz can prove faults actually happened.
type FaultCounters struct {
	Ops        uint64 `json:"ops"`
	Injected   uint64 `json:"injected"`
	TornWrites uint64 `json:"torn_writes"`
	ENOSPC     uint64 `json:"enospc"`
}

// FaultBackend wraps any Backend with deterministic, seeded fault
// injection: configurable error rates, torn/partial writes, ENOSPC, and
// optional latency on every operation. It is the chaos layer the
// resilience tests drive; with a zero FaultConfig it is a transparent
// (but counted) pass-through. Safe for concurrent use.
type FaultBackend struct {
	inner Backend

	mu  sync.Mutex
	rng *rand.Rand
	cfg FaultConfig

	ops        atomic.Uint64
	injected   atomic.Uint64
	tornWrites atomic.Uint64
	enospc     atomic.Uint64
}

// NewFaultBackend wraps inner with the given fault schedule.
func NewFaultBackend(inner Backend, cfg FaultConfig) *FaultBackend {
	return &FaultBackend{
		inner: inner,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		cfg:   cfg,
	}
}

// SetConfig swaps the fault schedule at runtime — how a test simulates
// an outage starting (ErrRate: 1) and healing (ErrRate: 0) without
// rebuilding the store. The PRNG keeps its position; the Seed field of
// the new config is ignored.
func (b *FaultBackend) SetConfig(cfg FaultConfig) {
	b.mu.Lock()
	cfg.Seed = b.cfg.Seed
	b.cfg = cfg
	b.mu.Unlock()
}

// Counters snapshots the injection counters.
func (b *FaultBackend) Counters() FaultCounters {
	return FaultCounters{
		Ops:        b.ops.Load(),
		Injected:   b.injected.Load(),
		TornWrites: b.tornWrites.Load(),
		ENOSPC:     b.enospc.Load(),
	}
}

// Inner returns the wrapped backend.
func (b *FaultBackend) Inner() Backend { return b.inner }

// Name implements Backend.
func (b *FaultBackend) Name() string { return "fault:" + b.inner.Name() }

// roll draws the fault decision for one operation. kind is "" for no
// fault, or one of "err", "torn", "enospc" (the latter two only for
// writes).
func (b *FaultBackend) roll(write bool) (kind string, frac float64, latency time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	latency = b.cfg.Latency
	// One draw per possible fault keeps the schedule deterministic and
	// independent of which rates are enabled.
	if b.rng.Float64() < b.cfg.ErrRate {
		kind = "err"
	}
	tornDraw := b.rng.Float64()
	enospcDraw := b.rng.Float64()
	frac = b.rng.Float64()
	if kind == "" && write {
		if tornDraw < b.cfg.TornWriteRate {
			kind = "torn"
		} else if enospcDraw < b.cfg.ENOSPCRate {
			kind = "enospc"
		}
	}
	return kind, frac, latency
}

func (b *FaultBackend) delay(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Put implements Backend, possibly injecting an error, a torn write
// (a prefix of data reaches the inner backend, then the call fails), or
// ENOSPC.
func (b *FaultBackend) Put(key RecordKey, data []byte) error {
	b.ops.Add(1)
	kind, frac, latency := b.roll(true)
	b.delay(latency)
	switch kind {
	case "err":
		b.injected.Add(1)
		return &BackendError{Op: "put", Err: fmt.Errorf("history: write %s: %w", key, ErrInjected)}
	case "torn":
		b.injected.Add(1)
		b.tornWrites.Add(1)
		n := int(frac * float64(len(data)))
		if n >= len(data) && len(data) > 0 {
			n = len(data) - 1
		}
		// Best-effort partial write: the torn bytes land under the key,
		// as a crash mid-write would leave them on disk.
		b.inner.Put(key, data[:n])
		return &BackendError{Op: "put", Err: fmt.Errorf("history: torn write %s (%d of %d bytes): %w", key, n, len(data), ErrInjected)}
	case "enospc":
		b.injected.Add(1)
		b.enospc.Add(1)
		return &BackendError{Op: "put", Err: fmt.Errorf("history: write %s: %w (%w)", key, syscall.ENOSPC, ErrInjected)}
	}
	return b.inner.Put(key, data)
}

// Get implements Backend.
func (b *FaultBackend) Get(key RecordKey) ([]byte, error) {
	b.ops.Add(1)
	kind, _, latency := b.roll(false)
	b.delay(latency)
	if kind == "err" {
		b.injected.Add(1)
		return nil, &BackendError{Op: "get", Err: fmt.Errorf("history: load %s: %w", key, ErrInjected)}
	}
	return b.inner.Get(key)
}

// Delete implements Backend.
func (b *FaultBackend) Delete(key RecordKey) error {
	b.ops.Add(1)
	kind, _, latency := b.roll(false)
	b.delay(latency)
	if kind == "err" {
		b.injected.Add(1)
		return &BackendError{Op: "delete", Err: fmt.Errorf("history: delete %s: %w", key, ErrInjected)}
	}
	return b.inner.Delete(key)
}

// Scan implements Backend.
func (b *FaultBackend) Scan() ([]ScanEntry, []ScanIssue, error) {
	b.ops.Add(1)
	kind, _, latency := b.roll(false)
	b.delay(latency)
	if kind == "err" {
		b.injected.Add(1)
		return nil, nil, &BackendError{Op: "scan", Err: fmt.Errorf("history: list: %w", ErrInjected)}
	}
	return b.inner.Scan()
}
