package history

import (
	"errors"
	"fmt"
	"os"
	"testing"
)

// The durability benchmarks price the WAL: what one journaled append
// costs under each sync policy (the fsync is the whole story), and what
// a restart pays to roll the journal forward into the record files.
// BENCH_PR5.json archives the numbers measured when the layer landed;
// `make bench-durability` regenerates them.

func benchWALEntry(i int, data []byte) WALEntry {
	return WALEntry{
		Op: walOpPut, App: "poisson", Version: "A",
		RunID: fmt.Sprintf("r%04d", i),
		Data:  data,
	}
}

// benchWALData is a payload in the size range of a real encoded run
// record (a few KiB of canonical JSON).
func benchWALData() []byte {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte('a' + i%26)
	}
	return data
}

func benchDurabilityAppend(b *testing.B, sync SyncPolicy) {
	w, err := StartWAL(b.TempDir(), WALOptions{Sync: sync, SegmentBytes: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	data := benchWALData()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(benchWALEntry(i, data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDurabilityAppendAlways fsyncs every append: the price of
// "acknowledged means durable across power loss".
func BenchmarkDurabilityAppendAlways(b *testing.B) {
	benchDurabilityAppend(b, SyncAlways)
}

// BenchmarkDurabilityAppendInterval fsyncs at most every 100ms — the
// pcd default, bounding the power-loss window to that interval.
func BenchmarkDurabilityAppendInterval(b *testing.B) {
	benchDurabilityAppend(b, SyncIntervalPolicy)
}

// BenchmarkDurabilityAppendNone never fsyncs: frame + write only, the
// floor the sync policies are measured against.
func BenchmarkDurabilityAppendNone(b *testing.B) {
	benchDurabilityAppend(b, SyncNone)
}

// benchDurabilityReplay measures rolling a journal of n puts forward
// into an empty filesystem backend — the worst-case restart, where no
// journaled write reached its record file before the crash.
func benchDurabilityReplay(b *testing.B, n int) {
	be, err := NewFSBackend(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	data := benchWALData()
	entries := make([]WALEntry, n)
	for i := range entries {
		entries[i] = benchWALEntry(i, data)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for _, e := range entries {
			if err := be.Delete(e.Key()); err != nil && !errors.Is(err, os.ErrNotExist) {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		applied, err := replayWAL(be, entries)
		if err != nil {
			b.Fatal(err)
		}
		if applied != n {
			b.Fatalf("replayed %d of %d entries", applied, n)
		}
	}
}

func BenchmarkDurabilityReplay8(b *testing.B)   { benchDurabilityReplay(b, 8) }
func BenchmarkDurabilityReplay64(b *testing.B)  { benchDurabilityReplay(b, 64) }
func BenchmarkDurabilityReplay256(b *testing.B) { benchDurabilityReplay(b, 256) }
