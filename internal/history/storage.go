package history

// Storage is the read/write/query surface everything above the store
// depends on: the harness environment, the pcd service layer, the load
// harness and the CLI tools all speak this interface, so a single
// durable Store and a consistent-hash ShardedStore are interchangeable
// behind it. The semantics are those documented on Store's methods; in
// particular, records handed out by Load, LoadAll and Query are interned
// and must be treated as read-only, and both implementations return
// results in the same canonical order (byte-identical output is part of
// the contract, not an accident).
type Storage interface {
	// Save writes (or overwrites) a record.
	Save(rec *RunRecord) error
	// PutBatch writes records in order, stopping at the first failure;
	// it returns how many were saved. Sharded storage groups the batch
	// by owning shard so each shard is visited once.
	PutBatch(recs []*RunRecord) (int, error)
	// Load reads one record by app, version and run id.
	Load(app, version, runID string) (*RunRecord, error)
	// Delete removes one record.
	Delete(app, version, runID string) error
	// Keys returns every indexed record key in (app, version, run id)
	// order.
	Keys() []RecordKey
	// Len returns the number of indexed records.
	Len() int
	// List returns the stored records' display names, sorted.
	List() ([]string, error)
	// LoadAll returns every record whose app (and version, when
	// non-empty) matches, in canonical key order.
	LoadAll(app, version string) ([]*RunRecord, error)
	// Query applies the filter across the app's stored runs, ordered by
	// descending value then run identity.
	Query(app, version string, f ResultFilter) ([]QueryHit, error)
	// PersistentBottlenecks counts (hypothesis : focus) pairs true in at
	// least minRuns stored runs.
	PersistentBottlenecks(app, version string, minRuns int) (map[string]int, error)
	// ScanIssues returns the entries the last scan skipped as unreadable.
	ScanIssues() []ScanIssue
	// Recovery reports what opening the store repaired (nil when the
	// store was not opened through a recovering path).
	Recovery() *RecoveryReport
	// Ping probes the storage engine; nil means healthy. Implementations
	// may use it to re-admit storage that had been marked down.
	Ping() error
	// WALStats totals the write-ahead journal's counters (the zero value
	// when journaling is off).
	WALStats() WALStats
	// SyncWAL flushes the journal(s) to stable storage regardless of the
	// configured sync policy — the graceful-shutdown barrier.
	SyncWAL() error
	// Dir returns the store's root directory, or "" for in-memory
	// storage.
	Dir() string
	// Close flushes and closes the journal(s); reads keep working.
	Close() error
}

// Both store layouts satisfy the interface.
var (
	_ Storage = (*Store)(nil)
	_ Storage = (*ShardedStore)(nil)
)

// WALStats returns the journal's counters, or the zero value when the
// store was not opened durable.
func (s *Store) WALStats() WALStats {
	if s.wal == nil {
		return WALStats{}
	}
	return s.wal.Stats()
}
