package history

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// ShardsDirName is the subdirectory of a sharded store root that holds
// the per-shard stores and the layout manifest.
const ShardsDirName = "shards"

// shardManifestName is the layout manifest inside the shards directory.
// It pins the shard count and hash scheme; opening with a mismatched
// -shards value is an error, not a silent resharding.
const shardManifestName = "MANIFEST.json"

// shardHashScheme names the routing function the manifest pins:
// FNV-1a(64) over app NUL version, folded through the jump consistent
// hash. Changing the scheme would silently orphan every stored record,
// so opens reject manifests naming anything else.
const shardHashScheme = "fnv64a-jump"

type shardManifest struct {
	Version int    `json:"version"`
	Shards  int    `json:"shards"`
	Hash    string `json:"hash"`
	// Replicas is the follower count the deployment expects per shard
	// (0 = unreplicated). Manifest version 2 introduced it; version 1
	// manifests read back as Replicas 0 and stay valid.
	Replicas int `json:"replicas,omitempty"`
}

// errShardDown marks operations refused because the target shard is
// down (failed to open, or breaker-tripped on consecutive backend
// failures). It is always wrapped in a BackendError, so the service
// layer classifies it as storage trouble (503 + Retry-After), and it is
// transient: a later Ping can revive the shard.
var errShardDown = errors.New("history: shard down")

// ShardForKey routes a record key to its shard: FNV-1a over
// (app, version) folded through the jump consistent hash. Version-blind
// it is not — the pair is the paper's unit of cross-execution
// comparison, so keeping all runs of one (app, version) on one shard
// makes the common Query/CompareRuns case single-shard.
func ShardForKey(app, version string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	io.WriteString(h, app)
	h.Write([]byte{0})
	io.WriteString(h, version)
	return jumpHash(h.Sum64(), shards)
}

// jumpHash is the Lamping–Veach jump consistent hash: O(ln n), no
// tables, and growing the bucket count moves only 1/n of the keys.
func jumpHash(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// shardDirName renders the zero-padded per-shard directory name.
func shardDirName(i int) string { return fmt.Sprintf("%02d", i) }

// ShardRecovery is one shard's slice of a sharded store's recovery
// report: either the shard's own report, or the error that kept it from
// opening at all (in which case the shard starts down).
type ShardRecovery struct {
	Shard int
	// Err is the open failure, "" when the shard opened.
	Err string
	// Report is the shard's own recovery report (nil when open failed).
	Report *RecoveryReport
}

// ShardInfo is one shard's health gauge set — record count, degraded
// flag, last recovery outcome — exported through /statsz.
type ShardInfo struct {
	Shard        int    `json:"shard"`
	Records      int    `json:"records"`
	Degraded     bool   `json:"degraded"`
	LastRecovery string `json:"last_recovery"`
	// Failover reports replica involvement: "" while the local store
	// serves, "reads" while a down shard's reads come from a follower,
	// "promoted" once a follower took over the keyspace for writes too.
	Failover string `json:"failover,omitempty"`
}

// ShardReplica is a replica's serving surface for one shard — the point
// and scan operations ShardedStore redirects to a follower when the
// local shard store is down. The replication layer implements it over
// HTTP; it lives here so the store does not import the transport.
type ShardReplica interface {
	Save(rec *RunRecord) error
	PutBatch(recs []*RunRecord) (int, error)
	Load(app, version, runID string) (*RunRecord, error)
	Delete(app, version, runID string) error
	Keys() []RecordKey
	Len() int
	LoadAll(app, version string) ([]*RunRecord, error)
}

// ShardFailover picks replicas for failed shards: Reader returns the
// most-caught-up follower able to serve a shard's reads, Promote hands
// the shard's keyspace to a follower for writes as well (after which the
// local store must never serve it again in this process — promotion is
// one-way until restart).
type ShardFailover interface {
	Reader(shard int) (ShardReplica, bool)
	Promote(shard int) (ShardReplica, error)
}

// shardState is one shard plus its health: a breaker counting
// consecutive backend failures, the down flag, and the last error for
// operators. st is nil while the shard failed to open.
type shardState struct {
	idx int
	dir string

	mu           sync.Mutex
	st           *Store
	down         bool
	fails        int
	lastErr      string
	lastRecovery string
	// promoted, once set, is the follower that owns this shard's keyspace:
	// every later operation goes there and the local store stays retired
	// (reviving it would fork the keyspace — split brain).
	promoted ShardReplica
	// servedByReplica notes that the last degraded read came from a
	// follower, for the /statsz failover gauge.
	servedByReplica bool
}

// live returns the shard's store when it is up. A promoted shard is
// never live — its keyspace belongs to the follower now.
func (sh *shardState) live() (*Store, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.down || sh.st == nil || sh.promoted != nil {
		return nil, false
	}
	return sh.st, true
}

// replica returns the promoted handle when the shard has been handed
// over.
func (sh *shardState) replica() (ShardReplica, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.promoted, sh.promoted != nil
}

// noteErr feeds the shard breaker with one backend failure; threshold
// consecutive failures mark the shard down until a Ping revives it.
func (sh *shardState) noteErr(threshold int, err error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.lastErr = err.Error()
	sh.fails++
	if sh.fails >= threshold {
		sh.down = true
	}
}

// noteOK resets the consecutive-failure count. It does not clear the
// down flag — only a successful Ping re-admits a shard, so one lucky
// read cannot flap a broken shard back in.
func (sh *shardState) noteOK() {
	sh.mu.Lock()
	sh.fails = 0
	sh.mu.Unlock()
}

// downErr is the error a down shard returns for point operations.
func (sh *shardState) downErr(op string) error {
	sh.mu.Lock()
	msg := sh.lastErr
	sh.mu.Unlock()
	if msg == "" {
		msg = "failed to open"
	}
	return &BackendError{Op: op, Err: fmt.Errorf("%w: shard %s (%s)", errShardDown, shardDirName(sh.idx), msg)}
}

// ShardedStore consistent-hash-routes records by (app, version) across
// N per-shard directories under <root>/shards/NN/, each shard a full
// durable Store with its own WAL, index, quarantine and recovery. Point
// operations route to one shard; Query, List, LoadAll and
// PersistentBottlenecks scatter-gather across live shards under a
// per-shard timeout and merge in canonical key order, which keeps their
// output byte-identical to a single store holding the same records. A
// failed shard degrades to absent (reads skip it, writes to its
// keyspace fail fast as backend errors) instead of taking the store
// down; Ping probes every shard and revives the ones that answer.
type ShardedStore struct {
	dir       string
	n         int
	opts      DurableOptions
	timeout   time.Duration
	threshold int
	shards    []*shardState
	recovery  *RecoveryReport
	replicas  int
	failover  ShardFailover
	promote   bool
}

// Shards returns the shard count pinned by the store's manifest.
func (s *ShardedStore) Shards() int { return s.n }

// Replicas returns the per-shard follower count the manifest expects
// (0 = unreplicated layout).
func (s *ShardedStore) Replicas() int { return s.replicas }

// Shard returns shard i's local store, even while its breaker is open —
// the replication layer needs the journal handle regardless of serving
// state. ok is false when the shard never opened or i is out of range.
func (s *ShardedStore) Shard(i int) (*Store, bool) {
	if i < 0 || i >= s.n {
		return nil, false
	}
	sh := s.shards[i]
	sh.mu.Lock()
	st := sh.st
	sh.mu.Unlock()
	return st, st != nil
}

// SetFailover installs (or replaces) the replica seam after open — the
// daemon wires replication up once the HTTP side exists, which is after
// the store is built.
func (s *ShardedStore) SetFailover(f ShardFailover, promote bool) {
	s.failover = f
	s.promote = promote
}

// FailoverPromote hands shard's keyspace to its most-caught-up follower
// through the failover seam, regardless of whether write-path promotion
// (the -promote opt-in) is armed — this is the failure detector's hook:
// promotion driven by observed sustained death, not by a write tripping
// the breaker. Idempotent; the first promotion wins.
func (s *ShardedStore) FailoverPromote(shard int) error {
	if s.failover == nil {
		return fmt.Errorf("history: shard %02d: no failover seam installed", shard)
	}
	if shard < 0 || shard >= s.n {
		return fmt.Errorf("history: no shard %d", shard)
	}
	sh := s.shards[shard]
	sh.mu.Lock()
	already := sh.promoted != nil
	sh.mu.Unlock()
	if already {
		return nil
	}
	r, err := s.failover.Promote(shard)
	if err != nil {
		return err
	}
	if r == nil {
		return fmt.Errorf("history: shard %02d: promotion elected no follower", shard)
	}
	sh.mu.Lock()
	if sh.promoted == nil {
		sh.promoted = r
	}
	sh.mu.Unlock()
	return nil
}

// Dir returns the sharded store's root directory.
func (s *ShardedStore) Dir() string { return s.dir }

// shardOptions derives one shard's open options: every shard is a full
// durable store with the root's WAL settings, wrapped per shard when a
// fault seam is installed.
func (s *ShardedStore) shardOptions(i int, create bool) DurableOptions {
	so := DurableOptions{
		Create:     create,
		WAL:        s.opts.WAL,
		WALOptions: s.opts.WALOptions,
		Wrap:       s.opts.Wrap,
	}
	if s.opts.WrapShard != nil {
		so.Wrap = func(b Backend) Backend { return s.opts.WrapShard(i, b) }
	}
	return so
}

// openShard opens (never creates) one shard store.
func (s *ShardedStore) openShard(i int) (*Store, error) {
	return OpenStoreDurable(s.shards[i].dir, s.shardOptions(i, false))
}

// OpenSharded opens (or, with o.Create and n > 0, creates) the sharded
// store rooted at dir. n == 0 takes the shard count from the manifest;
// a non-zero n must match an existing manifest. A shard that fails to
// open does not fail the whole store — it starts down, reported through
// Recovery and ShardStats — unless every shard fails, which is a
// configuration error worth dying for.
func OpenSharded(dir string, n int, o DurableOptions) (*ShardedStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("history: empty store directory")
	}
	shardsDir := filepath.Join(dir, ShardsDirName)
	manifestPath := filepath.Join(shardsDir, shardManifestName)

	var m shardManifest
	data, err := os.ReadFile(manifestPath)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("history: sharded store %s: corrupt manifest: %w", dir, err)
		}
		if m.Hash != shardHashScheme {
			return nil, fmt.Errorf("history: sharded store %s: manifest hash scheme %q, this build speaks %q", dir, m.Hash, shardHashScheme)
		}
		if m.Shards < 1 {
			return nil, fmt.Errorf("history: sharded store %s: manifest shard count %d", dir, m.Shards)
		}
		if n != 0 && n != m.Shards {
			return nil, fmt.Errorf("history: sharded store %s has %d shards, -shards %d would orphan records (resharding is not automatic)", dir, m.Shards, n)
		}
		n = m.Shards
	case os.IsNotExist(err):
		if !o.Create || n < 1 {
			return nil, fmt.Errorf("history: %s is not a sharded store (no %s)", dir, filepath.Join(ShardsDirName, shardManifestName))
		}
		if n > 99 {
			return nil, fmt.Errorf("history: %d shards exceed the layout's two-digit naming (max 99)", n)
		}
	default:
		return nil, fmt.Errorf("history: sharded store %s: read manifest: %w", dir, err)
	}
	creating := data == nil

	replicas := o.Replicas
	if data != nil && o.Replicas == 0 {
		replicas = m.Replicas
	}
	s := &ShardedStore{
		dir:       dir,
		n:         n,
		opts:      o,
		timeout:   o.ShardTimeout,
		threshold: o.ShardBreakerThreshold,
		replicas:  replicas,
		failover:  o.Failover,
		promote:   o.Promote,
	}
	if s.timeout <= 0 {
		s.timeout = 2 * time.Second
	}
	if s.threshold <= 0 {
		s.threshold = 3
	}

	rep := &RecoveryReport{}
	opened := 0
	var firstErr error
	for i := 0; i < n; i++ {
		sh := &shardState{idx: i, dir: filepath.Join(shardsDir, shardDirName(i))}
		st, err := OpenStoreDurable(sh.dir, s.shardOptions(i, creating))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			sh.down = true
			sh.lastErr = err.Error()
			sh.lastRecovery = "open failed: " + err.Error()
			rep.Shards = append(rep.Shards, &ShardRecovery{Shard: i, Err: err.Error()})
			s.shards = append(s.shards, sh)
			continue
		}
		opened++
		sh.st = st
		srep := st.Recovery()
		sh.lastRecovery = recoverySummary(srep)
		rep.Shards = append(rep.Shards, &ShardRecovery{Shard: i, Report: srep})
		foldShardRecovery(rep, i, srep)
		s.shards = append(s.shards, sh)
	}
	if opened == 0 {
		return nil, fmt.Errorf("history: sharded store %s: no shard opened: %w", dir, firstErr)
	}
	if creating {
		// The manifest is the layout's commit point: written after the
		// shard directories exist, atomically, so a crash mid-create
		// leaves a re-creatable layout rather than a half-pinned one.
		mv := shardManifest{Version: 1, Shards: n, Hash: shardHashScheme}
		if replicas > 0 {
			// Version 2 = replication-aware manifest. Version is
			// informational (opens validate hash + shard count), so v1
			// readers still open the layout.
			mv.Version = 2
			mv.Replicas = replicas
		}
		mdata, err := json.MarshalIndent(mv, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("history: sharded store %s: encode manifest: %w", dir, err)
		}
		tmp := manifestPath + ".tmp"
		if err := os.WriteFile(tmp, append(mdata, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("history: sharded store %s: write manifest: %w", dir, err)
		}
		if err := os.Rename(tmp, manifestPath); err != nil {
			return nil, fmt.Errorf("history: sharded store %s: write manifest: %w", dir, err)
		}
	}
	s.recovery = rep
	return s, nil
}

// foldShardRecovery folds one shard's recovery report into the root
// aggregate, prefixing names with the shard's directory so the pcd
// startup log names repairable files unambiguously.
func foldShardRecovery(rep *RecoveryReport, i int, srep *RecoveryReport) {
	if srep == nil {
		return
	}
	prefix := path.Join(ShardsDirName, shardDirName(i)) + "/"
	for _, t := range srep.SweptTemp {
		rep.SweptTemp = append(rep.SweptTemp, prefix+t)
	}
	for _, q := range srep.Quarantined {
		rep.Quarantined = append(rep.Quarantined, QuarantinedEntry{Name: prefix + q.Name, Reason: q.Reason})
	}
	if srep.WAL != nil {
		if rep.WAL == nil {
			rep.WAL = &WALRecovery{}
		}
		rep.WAL.Segments += srep.WAL.Segments
		rep.WAL.Entries += srep.WAL.Entries
		rep.WAL.Replayed += srep.WAL.Replayed
		rep.WAL.TornTail = rep.WAL.TornTail || srep.WAL.TornTail
		for _, c := range srep.WAL.Corrupt {
			rep.WAL.Corrupt = append(rep.WAL.Corrupt, prefix+c)
		}
	}
}

// recoverySummary renders a shard's recovery outcome as the one-line
// gauge /statsz exports.
func recoverySummary(rep *RecoveryReport) string {
	if rep.Empty() {
		return "clean"
	}
	out := fmt.Sprintf("swept %d, quarantined %d", len(rep.SweptTemp), len(rep.Quarantined))
	if !rep.WAL.Empty() {
		out += fmt.Sprintf(", wal replayed %d", rep.WAL.Replayed)
	}
	return out
}

// OpenStoreAuto opens the store at dir in whichever layout is present:
// sharded when <dir>/shards exists, single otherwise. shards > 0 forces
// the sharded layout (creating it when o.Create is set; matching the
// manifest otherwise), so `pcd -shards N -create` and every read-only
// tool can share one open path.
func OpenStoreAuto(dir string, shards int, o DurableOptions) (Storage, error) {
	if shards > 0 {
		return OpenSharded(dir, shards, o)
	}
	if fi, err := os.Stat(filepath.Join(dir, ShardsDirName)); err == nil && fi.IsDir() {
		return OpenSharded(dir, 0, o)
	}
	return OpenStoreDurable(dir, o)
}

// IsShardedLayout reports whether dir holds a sharded store layout.
func IsShardedLayout(dir string) bool {
	fi, err := os.Stat(filepath.Join(dir, ShardsDirName))
	return err == nil && fi.IsDir()
}

// route returns the shard owning (app, version).
func (s *ShardedStore) route(app, version string) *shardState {
	return s.shards[ShardForKey(app, version, s.n)]
}

// observe feeds the shard breaker from one operation's outcome. Only
// backend-grade failures count — validation errors and definitive
// misses say nothing about the shard's health.
func (s *ShardedStore) observe(sh *shardState, err error) {
	if err == nil {
		sh.noteOK()
		return
	}
	if IsBackendError(err) && !errors.Is(err, os.ErrNotExist) {
		sh.noteErr(s.threshold, err)
	}
}

// fallback returns the replica handle able to serve a down shard: the
// promoted follower when the keyspace was handed over, else a caught-up
// reader for reads, else — when write failover is allowed — the follower
// a one-way promotion elects. ok is false when no replica can serve and
// the operation must fail as before.
func (s *ShardedStore) fallback(sh *shardState, write bool) (ShardReplica, bool) {
	if r, ok := sh.replica(); ok {
		return r, true
	}
	if s.failover == nil {
		return nil, false
	}
	if !write {
		r, ok := s.failover.Reader(sh.idx)
		if ok {
			sh.mu.Lock()
			sh.servedByReplica = true
			sh.mu.Unlock()
		}
		return r, ok
	}
	if !s.promote {
		return nil, false
	}
	r, err := s.failover.Promote(sh.idx)
	if err != nil || r == nil {
		return nil, false
	}
	sh.mu.Lock()
	// First promotion wins; Promote is idempotent on the replica side, so
	// a concurrent racer got the same follower anyway.
	if sh.promoted == nil {
		sh.promoted = r
	} else {
		r = sh.promoted
	}
	sh.mu.Unlock()
	return r, true
}

// Save routes the record to its shard. Writes to a down shard fail fast
// with a transient backend error (the service layer answers 503 +
// Retry-After) — unless a replica seam with promotion is installed, in
// which case the keyspace is handed to a follower and stays writable.
func (s *ShardedStore) Save(rec *RunRecord) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	sh := s.route(rec.App, rec.Version)
	st, ok := sh.live()
	if !ok {
		if r, ok := s.fallback(sh, true); ok {
			return r.Save(rec)
		}
		return sh.downErr("put")
	}
	err := st.Save(rec)
	s.observe(sh, err)
	return err
}

// PutBatch validates every record, then groups the batch by owning
// shard and writes each group through its shard's batch path — one
// routing decision and one breaker check per group instead of per
// record. Groups are written in ascending shard order (input order
// within a group); the first failing group stops the batch, reporting
// how many records landed.
func (s *ShardedStore) PutBatch(recs []*RunRecord) (int, error) {
	for i, rec := range recs {
		if rec == nil {
			return 0, fmt.Errorf("history: batch record %d is nil", i)
		}
		if err := rec.Validate(); err != nil {
			return 0, fmt.Errorf("history: batch record %d: %w", i, err)
		}
	}
	groups := make(map[int][]*RunRecord)
	for _, rec := range recs {
		idx := ShardForKey(rec.App, rec.Version, s.n)
		groups[idx] = append(groups[idx], rec)
	}
	idxs := make([]int, 0, len(groups))
	for idx := range groups {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	saved := 0
	for _, idx := range idxs {
		sh := s.shards[idx]
		st, ok := sh.live()
		if !ok {
			r, rok := s.fallback(sh, true)
			if !rok {
				return saved, sh.downErr("put")
			}
			n, err := r.PutBatch(groups[idx])
			saved += n
			if err != nil {
				return saved, err
			}
			continue
		}
		n, err := st.PutBatch(groups[idx])
		saved += n
		s.observe(sh, err)
		if err != nil {
			return saved, err
		}
	}
	return saved, nil
}

// Load routes the read to the shard owning (app, version), failing over
// to a caught-up follower when the shard is down.
func (s *ShardedStore) Load(app, version, runID string) (*RunRecord, error) {
	sh := s.route(app, version)
	st, ok := sh.live()
	if !ok {
		if r, ok := s.fallback(sh, false); ok {
			return r.Load(app, version, runID)
		}
		return nil, sh.downErr("get")
	}
	rec, err := st.Load(app, version, runID)
	s.observe(sh, err)
	return rec, err
}

// Delete routes the delete to the shard owning (app, version). Like
// Save, a down shard's delete goes to the promoted follower when write
// failover is enabled.
func (s *ShardedStore) Delete(app, version, runID string) error {
	sh := s.route(app, version)
	st, ok := sh.live()
	if !ok {
		if r, ok := s.fallback(sh, true); ok {
			return r.Delete(app, version, runID)
		}
		return sh.downErr("delete")
	}
	err := st.Delete(app, version, runID)
	s.observe(sh, err)
	return err
}

// shardResult carries one shard's scatter contribution back by index,
// so merges are deterministic regardless of completion order.
type shardResult[T any] struct {
	idx int
	val T
	err error
}

// shardSource is the scan surface scatter reads from: a live local
// store, or the replica standing in for a down shard. Both *Store and
// ShardReplica satisfy it.
type shardSource interface {
	Keys() []RecordKey
	Len() int
	LoadAll(app, version string) ([]*RunRecord, error)
}

// scatter runs f over every serving shard concurrently under the
// per-shard timeout. A live shard serves from its local store; a down
// shard serves from a follower when the replica seam can supply one, so
// its keyspace contributes to merged reads instead of turning absent.
// A shard that errors or misses the deadline contributes nothing to this
// call and — local sources only — feeds the shard breaker. Results are
// gathered in shard order.
func scatter[T any](s *ShardedStore, op string, f func(src shardSource) (T, error)) []T {
	ch := make(chan shardResult[T], s.n)
	launched := make([]bool, s.n)
	viaReplica := make([]bool, s.n)
	pending := 0
	for i, sh := range s.shards {
		var src shardSource
		if st, ok := sh.live(); ok {
			src = st
		} else if r, ok := s.fallback(sh, false); ok {
			src = r
			viaReplica[i] = true
		} else {
			continue
		}
		launched[i] = true
		pending++
		go func(i int, src shardSource) {
			v, err := f(src)
			ch <- shardResult[T]{idx: i, val: v, err: err}
		}(i, src)
	}
	timer := time.NewTimer(s.timeout)
	defer timer.Stop()
	got := make([]*shardResult[T], s.n)
	received := 0
	for received < pending {
		select {
		case r := <-ch:
			got[r.idx] = &r
			received++
		case <-timer.C:
			// Late shards are absent for this call; the buffered channel
			// lets their goroutines finish without leaking.
			received = pending
		}
	}
	out := make([]T, 0, s.n)
	for i, sh := range s.shards {
		r := got[i]
		if r == nil {
			if launched[i] && !viaReplica[i] {
				sh.noteErr(s.threshold, fmt.Errorf("history: shard %s: %s timed out after %s", shardDirName(i), op, s.timeout))
			}
			continue
		}
		if r.err != nil {
			if !viaReplica[i] {
				s.observe(sh, r.err)
			}
			continue
		}
		if !viaReplica[i] {
			sh.noteOK()
		}
		out = append(out, r.val)
	}
	return out
}

// Keys merges every serving shard's keys into canonical (app, version,
// run id) order.
func (s *ShardedStore) Keys() []RecordKey {
	parts := scatter(s, "keys", func(src shardSource) ([]RecordKey, error) { return src.Keys(), nil })
	var keys []RecordKey
	for _, p := range parts {
		keys = append(keys, p...)
	}
	sortKeys(keys)
	return keys
}

// Len sums the live shards' record counts.
func (s *ShardedStore) Len() int {
	parts := scatter(s, "len", func(src shardSource) (int, error) { return src.Len(), nil })
	n := 0
	for _, c := range parts {
		n += c
	}
	return n
}

// List merges the live shards' display names, sorted — byte-identical
// to a single store holding the same records.
func (s *ShardedStore) List() ([]string, error) {
	keys := s.Keys()
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k.String())
	}
	sort.Strings(out)
	return out, nil
}

// LoadAll scatter-gathers the matching records and merges them in
// canonical key order. Records stay interned per shard: treat them as
// read-only.
func (s *ShardedStore) LoadAll(app, version string) ([]*RunRecord, error) {
	parts := scatter(s, "scan", func(src shardSource) ([]*RunRecord, error) { return src.LoadAll(app, version) })
	var recs []*RunRecord
	for _, p := range parts {
		recs = append(recs, p...)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key().less(recs[j].Key()) })
	return recs, nil
}

// Query scatter-gathers the app's records and applies the same filter
// and ordering as a single store, so results are byte-identical. When
// version is non-empty the whole keyspace lives on one shard; a blank
// version fans out to all of them.
func (s *ShardedStore) Query(app, version string, f ResultFilter) ([]QueryHit, error) {
	if app == "" {
		return nil, fmt.Errorf("history: query needs an application name")
	}
	recs, err := s.LoadAll(app, version)
	if err != nil {
		return nil, err
	}
	return collectQueryHits(recs, f), nil
}

// PersistentBottlenecks counts (hypothesis : focus) pairs across the
// merged record set before applying the minRuns cut — a blank version
// spans shards, so per-shard counts must be summed first.
func (s *ShardedStore) PersistentBottlenecks(app, version string, minRuns int) (map[string]int, error) {
	recs, err := s.LoadAll(app, version)
	if err != nil {
		return nil, err
	}
	return countPersistent(recs, minRuns), nil
}

// ScanIssues concatenates the live shards' scan issues, names prefixed
// with the shard directory.
func (s *ShardedStore) ScanIssues() []ScanIssue {
	var out []ScanIssue
	for _, sh := range s.shards {
		st, ok := sh.live()
		if !ok {
			continue
		}
		prefix := path.Join(ShardsDirName, shardDirName(sh.idx)) + "/"
		for _, is := range st.ScanIssues() {
			out = append(out, ScanIssue{Name: prefix + is.Name, Err: is.Err})
		}
	}
	return out
}

// Recovery returns the aggregated recovery report of the open, with
// per-shard detail in its Shards field.
func (s *ShardedStore) Recovery() *RecoveryReport { return s.recovery }

// WALStats sums the live shards' journal counters.
func (s *ShardedStore) WALStats() WALStats {
	var total WALStats
	for _, sh := range s.shards {
		st, ok := sh.live()
		if !ok {
			continue
		}
		w := st.WALStats()
		total.Appends += w.Appends
		total.Syncs += w.Syncs
		total.Rotations += w.Rotations
		total.Segments += w.Segments
	}
	return total
}

// Ping probes every shard and revives the ones that answer: a
// breaker-tripped shard whose store responds is re-admitted, and a
// shard that failed to open is reopened in place (replaying its WAL).
// Ping returns nil while at least one shard serves — a single dead
// shard degrades its keyspace, it does not take the daemon down — and
// the first failure when the whole store is dark.
func (s *ShardedStore) Ping() error {
	live := 0
	var firstErr error
	for _, sh := range s.shards {
		if err := s.pingShard(sh); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		live++
	}
	if live == 0 {
		return firstErr
	}
	return nil
}

// pingShard probes one shard, reviving it on success. A promoted shard
// is never revived: its keyspace lives on the follower now, and letting
// the local store answer again would fork it (split brain). The shard
// counts as serving — through the replica — for Ping's liveness tally.
func (s *ShardedStore) pingShard(sh *shardState) error {
	sh.mu.Lock()
	if sh.promoted != nil {
		sh.mu.Unlock()
		return nil
	}
	st := sh.st
	sh.mu.Unlock()
	if st == nil {
		st, err := s.openShard(sh.idx)
		if err != nil {
			sh.mu.Lock()
			sh.lastErr = err.Error()
			sh.lastRecovery = "open failed: " + err.Error()
			sh.mu.Unlock()
			return err
		}
		sh.mu.Lock()
		sh.st = st
		sh.down = false
		sh.fails = 0
		sh.lastErr = ""
		sh.lastRecovery = recoverySummary(st.Recovery())
		sh.mu.Unlock()
		return nil
	}
	if err := st.Ping(); err != nil {
		sh.mu.Lock()
		sh.lastErr = err.Error()
		sh.mu.Unlock()
		return err
	}
	sh.mu.Lock()
	sh.down = false
	sh.fails = 0
	sh.mu.Unlock()
	return nil
}

// Close closes every shard that opened, returning the first error.
func (s *ShardedStore) Close() error {
	var firstErr error
	for _, sh := range s.shards {
		sh.mu.Lock()
		st := sh.st
		sh.mu.Unlock()
		if st == nil {
			continue
		}
		if err := st.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ShardStats snapshots every shard's health gauges in shard order.
func (s *ShardedStore) ShardStats() []ShardInfo {
	out := make([]ShardInfo, 0, s.n)
	for _, sh := range s.shards {
		sh.mu.Lock()
		info := ShardInfo{Shard: sh.idx, Degraded: sh.down, LastRecovery: sh.lastRecovery}
		switch {
		case sh.promoted != nil:
			info.Failover = "promoted"
		case sh.servedByReplica && sh.down:
			info.Failover = "reads"
		}
		st := sh.st
		sh.mu.Unlock()
		if st != nil {
			info.Records = st.Len()
		}
		out = append(out, info)
	}
	return out
}

// SyncWAL flushes every open shard journal to stable storage — the
// graceful-shutdown barrier, independent of each journal's sync policy.
func (s *ShardedStore) SyncWAL() error {
	var firstErr error
	for _, sh := range s.shards {
		sh.mu.Lock()
		st := sh.st
		sh.mu.Unlock()
		if st == nil {
			continue
		}
		if err := st.SyncWAL(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
