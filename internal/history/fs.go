package history

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FSBackend stores one JSON file per record in a directory.
//
// Files are named esc(app)-esc(version)-esc(runid).json, where esc
// percent-escapes '%', '-', path separators and control bytes in each
// component. The escaping makes the three components unambiguous: under
// the legacy scheme (raw app[-version]-runid.json) app "a-b" run "c" and
// app "a" version "b" run "c" collided on a-b-c.json. Legacy files are
// still read (Get falls back to the legacy name; Scan identifies every
// file by its JSON content, not its name) and are upgraded on the next
// Put of the same key.
type FSBackend struct {
	dir string

	// renameHook replaces os.Rename in Put when non-nil — the seam the
	// fault-injection tests use to fail the commit step of an atomic
	// write without touching the filesystem's behaviour.
	renameHook func(oldpath, newpath string) error
	// syncHook replaces syncDir when non-nil — the seam the durability
	// tests use to observe (or fail) the directory fsync that follows a
	// committed rename.
	syncHook func(dir string) error
	// fileSyncHook replaces the temp file's fsync in Put when non-nil —
	// the seam the durability tests use to observe (or fail) the data
	// sync that must precede the rename.
	fileSyncHook func(f *os.File) error
}

// syncDir fsyncs a directory, making a just-committed rename inside it
// durable across power loss. (The rename itself only orders the metadata
// in memory; the directory entry reaches the platter on its fsync.)
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// sync fsyncs a directory, through the test hook when set.
func (b *FSBackend) sync(dir string) error {
	if b.syncHook != nil {
		return b.syncHook(dir)
	}
	return syncDir(dir)
}

// syncFile fsyncs an open file, through the test hook when set.
func (b *FSBackend) syncFile(f *os.File) error {
	if b.fileSyncHook != nil {
		return b.fileSyncHook(f)
	}
	return f.Sync()
}

// NewFSBackend opens (creating if needed) a record directory.
func NewFSBackend(dir string) (*FSBackend, error) {
	if dir == "" {
		return nil, fmt.Errorf("history: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("history: create store: %w", err)
	}
	return &FSBackend{dir: dir}, nil
}

// Dir returns the backend's directory.
func (b *FSBackend) Dir() string { return b.dir }

// Name implements Backend.
func (b *FSBackend) Name() string { return "fs:" + b.dir }

// escapeComponent makes one key component safe to embed in a file name:
// '%' (the escape lead), '-' (the component separator), slashes and
// control bytes become %XX. Escaped names are a single path element and
// never collide across distinct keys.
func escapeComponent(s string) string {
	var out strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '%' || c == '-' || c == '/' || c == '\\' || c < 0x20 || c == 0x7f {
			fmt.Fprintf(&out, "%%%02X", c)
			continue
		}
		out.WriteByte(c)
	}
	return out.String()
}

// fileName is the escaped-scheme basename for a key. Every key has
// exactly three '-'-separated segments (the version segment is empty for
// versionless records), so names parse unambiguously.
func fileName(key RecordKey) string {
	return escapeComponent(key.App) + "-" + escapeComponent(key.Version) + "-" +
		escapeComponent(key.RunID) + ".json"
}

// legacyFileIs reports whether the legacy-named file at path holds the
// record for key. A legacy name is ambiguous — app "a-b" run "c" and app
// "a" version "b" run "c" share a-b-c.json — so before reading or
// removing one, the JSON identity fields decide whose file it is.
func legacyFileIs(path string, key RecordKey) ([]byte, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var id struct {
		App     string `json:"app"`
		Version string `json:"version"`
		RunID   string `json:"run_id"`
	}
	if err := json.Unmarshal(data, &id); err != nil {
		return nil, false
	}
	if (RecordKey{App: id.App, Version: id.Version, RunID: id.RunID}) != key {
		return nil, false
	}
	return data, true
}

// legacyFileName is the pre-escaping basename (app[-version]-runid.json),
// or "" when a component cannot appear in a single legacy path element.
func legacyFileName(key RecordKey) string {
	for _, c := range []string{key.App, key.Version, key.RunID} {
		if strings.ContainsAny(c, "/\\") {
			return ""
		}
	}
	name := key.App
	if key.Version != "" {
		name += "-" + key.Version
	}
	return name + "-" + key.RunID + ".json"
}

// rename commits an atomic write, through the test hook when set.
func (b *FSBackend) rename(oldpath, newpath string) error {
	if b.renameHook != nil {
		return b.renameHook(oldpath, newpath)
	}
	return os.Rename(oldpath, newpath)
}

// Put implements Backend: an atomic write (unique temp file + rename)
// that removes the temp file on every failure path — write, close,
// chmod, and rename alike — and removes the key's legacy file, if any,
// so re-saving a record migrates it to the escaped scheme.
func (b *FSBackend) Put(key RecordKey, data []byte) error {
	tmp, err := os.CreateTemp(b.dir, ".put-*.tmp")
	if err != nil {
		return fmt.Errorf("history: write: %w", err)
	}
	tmpName := tmp.Name()
	committed := false
	defer func() {
		// Structural cleanup: whichever step fails, the temp file never
		// outlives the call. A crash between write and rename still
		// orphans it; SweepTemp reclaims those at the next OpenStore.
		if !committed {
			os.Remove(tmpName)
		}
	}()
	_, werr := tmp.Write(data)
	if werr == nil {
		// Fsync the data before the rename can publish it: rename
		// durability (the directory fsync below) is worthless if a power
		// loss can leave the renamed file's blocks unwritten — the record
		// would survive as a zero-length or torn file.
		werr = b.syncFile(tmp)
	}
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Chmod(tmpName, 0o644)
	}
	if werr == nil {
		werr = b.rename(tmpName, filepath.Join(b.dir, fileName(key)))
	}
	if werr != nil {
		return fmt.Errorf("history: write: %w", werr)
	}
	committed = true
	// Make the rename durable: without the directory fsync a power loss
	// can forget the new directory entry even though the rename returned.
	if err := b.sync(b.dir); err != nil {
		return fmt.Errorf("history: write: sync dir: %w", err)
	}
	if legacy := legacyFileName(key); legacy != "" && legacy != fileName(key) {
		// Migrate: drop the key's legacy file — but only after checking
		// it is this key's (another key's escaped name can spell the
		// same bytes as this key's legacy name).
		path := filepath.Join(b.dir, legacy)
		if _, ours := legacyFileIs(path, key); ours {
			os.Remove(path)
		}
	}
	return nil
}

// Get implements Backend, reading the escaped name first and falling
// back to the legacy name for stores written before the escaped scheme.
func (b *FSBackend) Get(key RecordKey) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(b.dir, fileName(key)))
	if err == nil {
		return data, nil
	}
	if !os.IsNotExist(err) {
		return nil, fmt.Errorf("history: load: %w", err)
	}
	legacy := legacyFileName(key)
	if legacy == "" {
		return nil, fmt.Errorf("history: load: %w", err)
	}
	data, ours := legacyFileIs(filepath.Join(b.dir, legacy), key)
	if !ours {
		// Missing, or a different key's file under a colliding name:
		// report the escaped-scheme miss; it is the canonical location.
		return nil, fmt.Errorf("history: load: %w", err)
	}
	return data, nil
}

// Delete implements Backend, removing whichever of the escaped and
// legacy files exist — the same escaped-then-legacy fallback Get reads
// through, so a record reachable only under its pre-escaping name is
// deletable too. A file squatting on the key's legacy name that cannot
// be parsed at all (it belongs to no key) is quarantined rather than
// left to shadow the name forever.
func (b *FSBackend) Delete(key RecordKey) error {
	name := fileName(key)
	removed := false
	data, err := os.ReadFile(filepath.Join(b.dir, name))
	switch {
	case err == nil:
		if otherKeysLegacyFile(data, key, name) {
			// Another key's legacy-named record spells this key's escaped
			// name (app "a-b" run "c" squats on (a, b, c)'s canonical
			// location); it is not this key's file, so leave it alone.
			break
		}
		rerr := os.Remove(filepath.Join(b.dir, name))
		if rerr != nil && !os.IsNotExist(rerr) {
			return fmt.Errorf("history: delete: %w", rerr)
		}
		removed = rerr == nil
	case !os.IsNotExist(err):
		return fmt.Errorf("history: delete: %w", err)
	}
	if legacy := legacyFileName(key); legacy != "" && legacy != fileName(key) {
		path := filepath.Join(b.dir, legacy)
		if data, readable := readJSONFile(path); readable {
			var id struct {
				App     string `json:"app"`
				Version string `json:"version"`
				RunID   string `json:"run_id"`
			}
			switch {
			case json.Unmarshal(data, &id) != nil:
				// Unparseable: whoever it was, it is not a readable record
				// of any key. Set it aside restorably (best-effort — the
				// delete outcome does not depend on it).
				b.Quarantine(legacy, "unparseable legacy-named file found by delete")
			case (RecordKey{App: id.App, Version: id.Version, RunID: id.RunID}) == key:
				lerr := os.Remove(path)
				if lerr != nil && !os.IsNotExist(lerr) {
					return fmt.Errorf("history: delete: %w", lerr)
				}
				removed = removed || lerr == nil
			}
			// A different key's file under the colliding name is left alone.
		}
	}
	if !removed {
		return fmt.Errorf("history: delete %s: %w", key, os.ErrNotExist)
	}
	if err := b.sync(b.dir); err != nil {
		return fmt.Errorf("history: delete: sync dir: %w", err)
	}
	return nil
}

// readJSONFile reads a file, reporting whether it exists and was
// readable.
func readJSONFile(path string) ([]byte, bool) {
	data, err := os.ReadFile(path)
	return data, err == nil
}

// otherKeysLegacyFile reports whether data, stored under basename name,
// is a record of a key other than key whose legacy file name spells
// name — the one way a different key's file can legitimately occupy
// key's escaped-scheme location.
func otherKeysLegacyFile(data []byte, key RecordKey, name string) bool {
	var id struct {
		App     string `json:"app"`
		Version string `json:"version"`
		RunID   string `json:"run_id"`
	}
	if json.Unmarshal(data, &id) != nil {
		return false
	}
	k := RecordKey{App: id.App, Version: id.Version, RunID: id.RunID}
	return k != key && legacyFileName(k) == name
}

// QuarantineDir is the subdirectory OpenStore moves corrupt records
// into. Files in it are ignored by Scan; moving one back into the store
// directory (and reopening) restores the record.
const QuarantineDir = "quarantine"

// quarantineReport is the per-store log of what was quarantined and why.
const quarantineReport = "REPORT.txt"

// SweepTemp removes orphaned atomic-write temp files (".put-*.tmp") left
// behind by a crash between write and rename, returning the names it
// removed. Put never publishes a temp file, so any present when a store
// is opened is garbage by construction.
func (b *FSBackend) SweepTemp() ([]string, error) {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, fmt.Errorf("history: sweep: %w", err)
	}
	var swept []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, ".put-") || !strings.HasSuffix(name, ".tmp") {
			continue
		}
		if err := os.Remove(filepath.Join(b.dir, name)); err != nil {
			return swept, fmt.Errorf("history: sweep: %w", err)
		}
		swept = append(swept, name)
	}
	sort.Strings(swept)
	return swept, nil
}

// Quarantine moves the named store file into the quarantine/
// subdirectory and appends a line to quarantine/REPORT.txt recording the
// reason — corrupt data is set aside restorably, never deleted. name
// must be a bare basename as yielded by Scan.
func (b *FSBackend) Quarantine(name, reason string) error {
	if name == "" || strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("history: quarantine: bad entry name %q", name)
	}
	qdir := filepath.Join(b.dir, QuarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("history: quarantine: %w", err)
	}
	if err := os.Rename(filepath.Join(b.dir, name), filepath.Join(qdir, name)); err != nil {
		return fmt.Errorf("history: quarantine: %w", err)
	}
	// The move is two directory mutations; fsync both so a power loss
	// cannot resurrect the corrupt file in the store (or lose it from the
	// quarantine).
	if err := b.sync(qdir); err != nil {
		return fmt.Errorf("history: quarantine: sync dir: %w", err)
	}
	if err := b.sync(b.dir); err != nil {
		return fmt.Errorf("history: quarantine: sync dir: %w", err)
	}
	// The report is advisory; failing to append must not fail the
	// recovery that just made the store readable again.
	f, err := os.OpenFile(filepath.Join(qdir, quarantineReport),
		os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err == nil {
		fmt.Fprintf(f, "%s\t%s\n", name, reason)
		f.Close()
	}
	return nil
}

// Scan implements Backend: every .json file in the directory, unreadable
// files reported as issues. Escaped-scheme names sort after legacy names
// so that when a record exists under both, the escaped file wins the
// store's last-entry-wins indexing.
func (b *FSBackend) Scan() ([]ScanEntry, []ScanIssue, error) {
	dirEntries, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("history: list: %w", err)
	}
	var names []string
	for _, e := range dirEntries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Slice(names, func(i, j int) bool {
		ei, ej := strings.Contains(names[i], "%"), strings.Contains(names[j], "%")
		if ei != ej {
			return !ei // unescaped (legacy-looking) names first
		}
		return names[i] < names[j]
	})
	var entries []ScanEntry
	var issues []ScanIssue
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(b.dir, name))
		if err != nil {
			issues = append(issues, ScanIssue{Name: name, Err: err})
			continue
		}
		entries = append(entries, ScanEntry{Name: name, Data: data})
	}
	return entries, issues, nil
}
