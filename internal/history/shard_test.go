package history

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// shardSample builds a valid record distinguishable by its key and a
// per-run severity value.
func shardSample(app, version, runID string, val float64) *RunRecord {
	return &RunRecord{
		App: app, Version: version, RunID: runID, Duration: 100,
		Resources: map[string][]string{
			"Code":    {"/Code", "/Code/oned.f"},
			"Machine": {"/Machine", "/Machine/sp01"},
			"Process": {"/Process", "/Process/p1"},
		},
		ProcNodes: map[string]string{"p1": "sp01"},
		Results: []NodeResult{
			{Hyp: "ExcessiveSyncWaitingTime", Focus: "</Code,/Machine,/Process,/SyncObject>", State: "true", Value: val, Threshold: 0.2, ConcludedAt: 5, Priority: "medium"},
			{Hyp: "CPUbound", Focus: "</Code,/Machine,/Process,/SyncObject>", State: "false", Value: 0.1, Threshold: 0.3, ConcludedAt: 5, Priority: "medium"},
		},
		PairsTested: 2,
		TrueCount:   1,
	}
}

// TestShardForKeyStable pins the routing function. These values are the
// on-disk placement contract: if any of them change, every existing
// sharded store's records are orphaned, so a failure here means the
// hash scheme changed and needs a new manifest scheme name plus a
// migration path — not a test update.
func TestShardForKeyStable(t *testing.T) {
	golden := []struct {
		app, version string
		n, want      int
	}{
		{"poisson", "A", 2, 0},
		{"poisson", "B", 2, 1},
		{"poisson", "A", 4, 3},
		{"poisson", "B", 4, 2},
		{"poisson", "C", 4, 2},
		{"poisson", "G", 4, 0},
		{"poisson", "H", 4, 1},
		{"tester", "", 4, 1},
		{"ocean", "", 4, 1},
	}
	for _, g := range golden {
		if got := ShardForKey(g.app, g.version, g.n); got != g.want {
			t.Errorf("ShardForKey(%q, %q, %d) = %d, want %d (routing changed: stored records would be orphaned)",
				g.app, g.version, g.n, got, g.want)
		}
	}
	if got := ShardForKey("anything", "x", 1); got != 0 {
		t.Errorf("single shard route = %d, want 0", got)
	}
	if got := ShardForKey("anything", "x", 0); got != 0 {
		t.Errorf("zero-shard route = %d, want 0", got)
	}
}

// TestShardForKeyJumpProperty proves the consistent-hash property the
// layout relies on: growing the ring from n to n+1 moves keys only onto
// the new shard, never between existing ones.
func TestShardForKeyJumpProperty(t *testing.T) {
	moved := 0
	for i := 0; i < 200; i++ {
		v := fmt.Sprintf("v%d", i)
		a, b := ShardForKey("app", v, 4), ShardForKey("app", v, 5)
		if a != b {
			if b != 4 {
				t.Fatalf("key app/%s moved %d -> %d growing 4 -> 5; only the new shard may gain keys", v, a, b)
			}
			moved++
		}
	}
	// Expect roughly 1/5 of the keys on the new shard.
	if moved < 20 || moved > 60 {
		t.Errorf("%d of 200 keys moved growing 4 -> 5, want around 40", moved)
	}
}

// shardedFixture saves the same record set into a plain store and a
// 4-shard store; versions A, B, G, H cover all four shards.
var fixtureVersions = []string{"A", "B", "C", "G", "H"}

func saveFixture(t *testing.T, st Storage) {
	t.Helper()
	for i, v := range fixtureVersions {
		for _, run := range []string{"run1", "run2"} {
			if err := st.Save(shardSample("poisson", v, run, 0.3+float64(i)/10)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Save(shardSample("tester", "", "run1", 0.9)); err != nil {
		t.Fatal(err)
	}
}

// TestShardedMatchesSingleStore proves the byte-identity contract: a
// sharded store holding the same records as a single store answers
// List, Len, Keys, LoadAll, Query and PersistentBottlenecks with
// identical (JSON-identical) results, at -shards 1 and -shards 4 alike.
func TestShardedMatchesSingleStore(t *testing.T) {
	single, err := OpenStoreDurable(t.TempDir(), DurableOptions{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	saveFixture(t, single)

	for _, n := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			dir := t.TempDir()
			sh, err := OpenSharded(dir, n, DurableOptions{Create: true})
			if err != nil {
				t.Fatal(err)
			}
			defer sh.Close()
			saveFixture(t, sh)

			if n == 4 {
				// The fixture must actually exercise the ring: every
				// shard directory holds at least one record file.
				for i := 0; i < n; i++ {
					des, err := os.ReadDir(filepath.Join(dir, ShardsDirName, shardDirName(i)))
					if err != nil {
						t.Fatal(err)
					}
					found := false
					for _, de := range des {
						if strings.HasSuffix(de.Name(), ".json") {
							found = true
						}
					}
					if !found {
						t.Errorf("shard %02d holds no records; fixture does not cover the ring", i)
					}
				}
			}

			if got, want := sh.Len(), single.Len(); got != want {
				t.Errorf("Len = %d, want %d", got, want)
			}
			if got, want := sh.Keys(), single.Keys(); !reflect.DeepEqual(got, want) {
				t.Errorf("Keys = %v, want %v", got, want)
			}
			gotList, _ := sh.List()
			wantList, _ := single.List()
			if !reflect.DeepEqual(gotList, wantList) {
				t.Errorf("List = %v, want %v", gotList, wantList)
			}

			for _, version := range []string{"", "B"} {
				gotRecs, err := sh.LoadAll("poisson", version)
				if err != nil {
					t.Fatal(err)
				}
				wantRecs, err := single.LoadAll("poisson", version)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(asJSON(t, gotRecs), asJSON(t, wantRecs)) {
					t.Errorf("LoadAll(poisson, %q) diverges from the single store", version)
				}

				f := ResultFilter{State: "true", MinValue: 0.2}
				gotHits, err := sh.Query("poisson", version, f)
				if err != nil {
					t.Fatal(err)
				}
				wantHits, err := single.Query("poisson", version, f)
				if err != nil {
					t.Fatal(err)
				}
				if asJSON(t, gotHits) != asJSON(t, wantHits) {
					t.Errorf("Query(poisson, %q) diverges:\n got %s\nwant %s",
						version, asJSON(t, gotHits), asJSON(t, wantHits))
				}

				gotPers, err := sh.PersistentBottlenecks("poisson", version, 2)
				if err != nil {
					t.Fatal(err)
				}
				wantPers, err := single.PersistentBottlenecks("poisson", version, 2)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotPers, wantPers) {
					t.Errorf("PersistentBottlenecks(poisson, %q) = %v, want %v", version, gotPers, wantPers)
				}
			}

			rec, err := sh.Load("tester", "", "run1")
			if err != nil || rec.App != "tester" {
				t.Errorf("Load(tester) = %v, %v", rec, err)
			}
		})
	}
}

func asJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestOpenStoreAutoDetectsLayout proves the shared open path: -shards N
// creates the sharded layout, a later open with no shard count detects
// it from disk, a mismatched count is refused, and a plain directory
// still opens as a single store.
func TestOpenStoreAutoDetectsLayout(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStoreAuto(dir, 4, DurableOptions{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(shardSample("poisson", "A", "run1", 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if !IsShardedLayout(dir) {
		t.Fatal("creating with shards=4 did not leave a sharded layout")
	}

	st2, err := OpenStoreAuto(dir, 0, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sh, ok := st2.(*ShardedStore)
	if !ok {
		t.Fatalf("auto-open returned %T, want *ShardedStore", st2)
	}
	if sh.Shards() != 4 {
		t.Errorf("manifest shard count = %d, want 4", sh.Shards())
	}
	if _, err := st2.Load("poisson", "A", "run1"); err != nil {
		t.Errorf("record lost across reopen: %v", err)
	}

	// A mismatched -shards must refuse, not silently reshard.
	if _, err := OpenStoreAuto(dir, 2, DurableOptions{}); err == nil {
		t.Error("open with mismatched shard count succeeded; records would be orphaned")
	}

	// Plain directories keep opening as single stores.
	plain := t.TempDir()
	st3, err := OpenStoreAuto(plain, 0, DurableOptions{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if _, ok := st3.(*Store); !ok {
		t.Errorf("plain dir opened as %T, want *Store", st3)
	}

	// A sharded open of a non-sharded dir without Create is an error.
	if _, err := OpenSharded(t.TempDir(), 0, DurableOptions{}); err == nil {
		t.Error("OpenSharded of an empty dir without Create succeeded")
	}

	if _, err := OpenSharded(t.TempDir(), 100, DurableOptions{Create: true}); err == nil {
		t.Error("100 shards accepted; the layout's naming caps at 99")
	}
}

// TestShardedDegradationAndRevival walks the shard degradation ladder:
// consecutive backend failures trip one shard's breaker, point
// operations on its keyspace fail fast as transient backend errors
// without touching the backend, scatter reads answer from the surviving
// shards, and after the fault heals a Ping re-admits the shard.
func TestShardedDegradationAndRevival(t *testing.T) {
	faults := make(map[int]*FaultBackend)
	sh, err := OpenSharded(t.TempDir(), 4, DurableOptions{
		Create:                true,
		ShardBreakerThreshold: 2,
		WrapShard: func(shard int, b Backend) Backend {
			fb := NewFaultBackend(b, FaultConfig{Seed: int64(shard)})
			faults[shard] = fb
			return fb
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	saveFixture(t, sh)

	// Version B lives on shard 2 (pinned by TestShardForKeyStable);
	// versions A, G, H live elsewhere.
	down := ShardForKey("poisson", "B", 4)
	fullLen := sh.Len()

	faults[down].SetConfig(FaultConfig{ErrRate: 1})
	for i := 0; i < 2; i++ {
		if err := sh.Save(shardSample("poisson", "B", "run9", 0.5)); err == nil {
			t.Fatalf("save %d through a failing backend succeeded", i)
		}
	}
	stats := sh.ShardStats()
	if !stats[down].Degraded {
		t.Fatalf("shard %d not degraded after %d consecutive failures: %+v", down, 2, stats)
	}

	// Down shard: point ops fail fast with a transient backend error,
	// without touching the backend.
	opsBefore := faults[down].Counters().Ops
	err = sh.Save(shardSample("poisson", "B", "run9", 0.5))
	if err == nil || !IsBackendError(err) || !IsTransient(err) {
		t.Fatalf("save to down shard: err = %v, want transient backend error", err)
	}
	if _, err := sh.Load("poisson", "B", "run1"); err == nil || !IsTransient(err) {
		t.Fatalf("load from down shard: err = %v, want transient backend error", err)
	}
	if ops := faults[down].Counters().Ops; ops != opsBefore {
		t.Errorf("down shard backend touched: %d ops -> %d", opsBefore, ops)
	}

	// Scatter reads skip the down shard but keep serving the rest.
	if got := sh.Len(); got >= fullLen || got == 0 {
		t.Errorf("degraded Len = %d, want 0 < n < %d (down shard's records absent)", got, fullLen)
	}
	hits, err := sh.Query("poisson", "", ResultFilter{State: "true"})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.Version == "B" {
			t.Errorf("query returned version B from a down shard: %+v", h)
		}
	}
	if len(hits) == 0 {
		t.Error("query returned nothing; surviving shards should answer")
	}

	// One dead shard must not fail the whole store's health probe.
	if err := sh.Ping(); err != nil {
		t.Errorf("Ping with one down shard = %v, want nil (others serve)", err)
	}
	if !sh.ShardStats()[down].Degraded {
		t.Fatal("failed probe revived the shard")
	}

	// The fault heals; the next probe re-admits the shard.
	faults[down].SetConfig(FaultConfig{})
	if err := sh.Ping(); err != nil {
		t.Fatal(err)
	}
	if sh.ShardStats()[down].Degraded {
		t.Fatal("shard still degraded after a healthy probe")
	}
	if err := sh.Save(shardSample("poisson", "B", "run9", 0.5)); err != nil {
		t.Errorf("save after revival: %v", err)
	}
	if got := sh.Len(); got != fullLen+1 {
		t.Errorf("healed Len = %d, want %d", got, fullLen+1)
	}
}

// TestShardedOpenFailureDegrades proves a shard that cannot open leaves
// the store serving: its failure lands in the recovery report, its
// keyspace degrades to absent, and a Ping after the directory returns
// reopens it in place.
func TestShardedOpenFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	sh, err := OpenSharded(dir, 4, DurableOptions{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	saveFixture(t, sh)
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}

	down := ShardForKey("poisson", "B", 4)
	sdir := filepath.Join(dir, ShardsDirName, shardDirName(down))
	if err := os.Rename(sdir, sdir+".off"); err != nil {
		t.Fatal(err)
	}

	sh2, err := OpenSharded(dir, 0, DurableOptions{})
	if err != nil {
		t.Fatalf("one missing shard failed the whole open: %v", err)
	}
	defer sh2.Close()
	rep := sh2.Recovery()
	if rep.Empty() {
		t.Error("recovery report empty despite a shard that failed to open")
	}
	var reported bool
	for _, sr := range rep.Shards {
		if sr.Shard == down && sr.Err != "" {
			reported = true
		}
	}
	if !reported {
		t.Errorf("shard %d open failure not in recovery report: %+v", down, rep.Shards)
	}
	if !sh2.ShardStats()[down].Degraded {
		t.Error("unopenable shard not marked degraded")
	}
	if _, err := sh2.Load("poisson", "B", "run1"); err == nil || !IsTransient(err) {
		t.Fatalf("load from unopened shard: err = %v, want transient backend error", err)
	}

	// The directory comes back; a probe reopens the shard in place.
	if err := os.Rename(sdir+".off", sdir); err != nil {
		t.Fatal(err)
	}
	if err := sh2.Ping(); err != nil {
		t.Fatal(err)
	}
	if sh2.ShardStats()[down].Degraded {
		t.Fatal("shard still degraded after its directory returned")
	}
	if _, err := sh2.Load("poisson", "B", "run1"); err != nil {
		t.Errorf("load after reopen: %v", err)
	}

	// All shards gone is a configuration error worth dying for.
	for i := 0; i < 4; i++ {
		d := filepath.Join(dir, ShardsDirName, shardDirName(i))
		if err := os.Rename(d, d+".off"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := OpenSharded(dir, 0, DurableOptions{}); err == nil {
		t.Error("open with every shard missing succeeded")
	}
}

// TestFsckShardedCleanAndMisplaced proves the sharded fsck contract: a
// healthy store grades clean with per-shard sections, a record sitting
// on the wrong shard grades as residue (exit 1) with a misplaced count,
// and -repair moves it home.
func TestFsckShardedCleanAndMisplaced(t *testing.T) {
	dir := t.TempDir()
	sh, err := OpenSharded(dir, 4, DurableOptions{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	saveFixture(t, sh)
	total := sh.Len()
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sharded || rep.ShardCount != 4 {
		t.Fatalf("report sharded=%v count=%d, want sharded 4", rep.Sharded, rep.ShardCount)
	}
	if rep.Severity() != FsckClean {
		t.Fatalf("clean sharded store graded %d: %+v", rep.Severity(), rep.Findings)
	}
	if rep.Records != total {
		t.Errorf("fsck counted %d records, store held %d", rep.Records, total)
	}
	if len(rep.Shards) != 4 {
		t.Fatalf("per-shard sections = %d, want 4", len(rep.Shards))
	}

	// Deliberately misplace one record: move poisson-B-run1 from its
	// home shard onto another shard.
	key := RecordKey{App: "poisson", Version: "B", RunID: "run1"}
	home := ShardForKey(key.App, key.Version, 4)
	wrong := (home + 1) % 4
	name := fileName(key)
	if err := os.Rename(
		filepath.Join(dir, ShardsDirName, shardDirName(home), name),
		filepath.Join(dir, ShardsDirName, shardDirName(wrong), name),
	); err != nil {
		t.Fatal(err)
	}

	rep, err = FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckResidue {
		t.Fatalf("misplaced record graded %d, want residue (%d)", rep.Severity(), FsckResidue)
	}
	if rep.Misplaced != 1 {
		t.Errorf("misplaced count = %d, want 1", rep.Misplaced)
	}
	var finding *FsckFinding
	for _, sr := range rep.Shards {
		for i := range sr.Findings {
			if sr.Shard == wrong && sr.Findings[i].Path == name {
				finding = &sr.Findings[i]
			}
		}
	}
	if finding == nil {
		t.Fatalf("no placement finding on shard %02d: %+v", wrong, rep.Shards)
	}
	if !strings.Contains(finding.Problem, "hashes to shard "+shardDirName(home)) {
		t.Errorf("finding problem = %q, want the home shard named", finding.Problem)
	}

	// Repair moves it home; the store then grades clean and serves the
	// record again.
	rep, err = FsckStore(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Misplaced != 1 {
		t.Errorf("repair pass misplaced count = %d, want 1 (reflects what was found)", rep.Misplaced)
	}
	rep, err = FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckClean {
		t.Fatalf("store not clean after repair: %+v", rep.Findings)
	}
	sh2, err := OpenSharded(dir, 0, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sh2.Close()
	if _, err := sh2.Load(key.App, key.Version, key.RunID); err != nil {
		t.Errorf("repaired record unreachable: %v", err)
	}
}

// TestFsckShardedMigratesRootRecords proves the documented migration
// path: records of a legacy single store left at the root of a sharded
// layout grade as residue, and -repair distributes them onto the ring.
func TestFsckShardedMigratesRootRecords(t *testing.T) {
	dir := t.TempDir()
	// The legacy store fills the directory first...
	old, err := OpenStoreDurable(dir, DurableOptions{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	saveFixture(t, old)
	total := old.Len()
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}
	// ...then the sharded layout is created over it.
	sh, err := OpenSharded(dir, 4, DurableOptions{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckResidue {
		t.Fatalf("root records graded %d, want residue", rep.Severity())
	}

	if _, err := FsckStore(dir, true); err != nil {
		t.Fatal(err)
	}
	rep, err = FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckClean {
		t.Fatalf("store not clean after migration: %+v", rep.Findings)
	}
	if rep.Records != total {
		t.Errorf("migrated %d records, want %d", rep.Records, total)
	}

	sh2, err := OpenSharded(dir, 0, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sh2.Close()
	if got := sh2.Len(); got != total {
		t.Errorf("sharded store serves %d records after migration, want %d", got, total)
	}
	for _, v := range fixtureVersions {
		if _, err := sh2.Load("poisson", v, "run1"); err != nil {
			t.Errorf("migrated record poisson/%s/run1 unreachable: %v", v, err)
		}
	}
}

// TestFsckShardedLayoutDamage proves manifest loss and a missing shard
// directory grade as corruption (exit 2).
func TestFsckShardedLayoutDamage(t *testing.T) {
	dir := t.TempDir()
	sh, err := OpenSharded(dir, 4, DurableOptions{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	saveFixture(t, sh)
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}

	manifest := filepath.Join(dir, ShardsDirName, shardManifestName)
	if err := os.Remove(manifest); err != nil {
		t.Fatal(err)
	}
	rep, err := FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckCorrupt {
		t.Errorf("missing manifest graded %d, want corrupt", rep.Severity())
	}
	if rep.ShardCount != 4 {
		t.Errorf("inferred shard count = %d, want 4 from the NN directories", rep.ShardCount)
	}

	// Restore the manifest, remove a shard directory.
	data, err := json.Marshal(shardManifest{Version: 1, Shards: 4, Hash: shardHashScheme})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manifest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(dir, ShardsDirName, shardDirName(2))); err != nil {
		t.Fatal(err)
	}
	rep, err = FsckStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Severity() != FsckCorrupt {
		t.Errorf("missing shard dir graded %d, want corrupt", rep.Severity())
	}
}
