package sim

import (
	"math"
	"testing"
)

// collector records every emitted interval.
type collector struct {
	ivs []Interval
}

func (c *collector) OnInterval(iv Interval) { c.ivs = append(c.ivs, iv) }

func (c *collector) total(kind Kind, proc string) float64 {
	var sum float64
	for _, iv := range c.ivs {
		if iv.Kind == kind && (proc == "" || iv.Process == proc) {
			sum += iv.Duration()
		}
	}
	return sum
}

func newSim(t *testing.T, progs ...[]Stmt) (*Simulator, *collector) {
	t.Helper()
	cfg := DefaultConfig()
	s := New(cfg)
	col := &collector{}
	s.AddObserver(col)
	for i, p := range progs {
		if err := Validate(p, len(progs)); err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		name := string(rune('a' + i))
		if _, err := s.AddProcess("p"+name, "n"+name, p); err != nil {
			t.Fatal(err)
		}
	}
	return s, col
}

func TestComputeInterval(t *testing.T) {
	s, col := newSim(t, []Stmt{Compute{Module: "m", Function: "f", Mean: 2.0}})
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatal("not done")
	}
	if len(col.ivs) != 1 {
		t.Fatalf("intervals = %d", len(col.ivs))
	}
	iv := col.ivs[0]
	if iv.Kind != KindCPU || iv.Start != 0 || math.Abs(iv.End-2.0) > 1e-12 {
		t.Errorf("interval = %+v", iv)
	}
	if iv.Module != "m" || iv.Function != "f" || iv.Process != "pa" || iv.Node != "na" || iv.Calls != 1 {
		t.Errorf("attribution = %+v", iv)
	}
	p := s.Processes()[0]
	if math.Abs(p.Total(KindCPU)-2.0) > 1e-12 || math.Abs(p.FinishedAt()-2.0) > 1e-12 {
		t.Errorf("totals: cpu=%v finish=%v", p.Total(KindCPU), p.FinishedAt())
	}
}

func TestIOInterval(t *testing.T) {
	s, col := newSim(t, []Stmt{IO{Module: "m", Function: "f", Mean: 1.5}})
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if col.total(KindIOWait, "") != 1.5 {
		t.Errorf("io total = %v", col.total(KindIOWait, ""))
	}
}

func TestBlockingRendezvousTiming(t *testing.T) {
	// Sender reaches its send at t=0; receiver posts the receive at t=1
	// after computing. The sender must wait in synchronization from 0
	// until the transfer completes.
	send := []Stmt{Send{Module: "m", Function: "f", Tag: "t", Dst: 1, Bytes: 0, Blocking: true}}
	recv := []Stmt{
		Compute{Module: "m", Function: "g", Mean: 1.0},
		Recv{Module: "m", Function: "f", Tag: "t", Src: 0},
	}
	s, col := newSim(t, send, recv)
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatal("deadlock")
	}
	xfer := DefaultConfig().MsgLatency
	senderWait := col.total(KindSyncWait, "pa")
	if math.Abs(senderWait-(1.0+xfer)) > 1e-9 {
		t.Errorf("sender sync wait = %v, want %v", senderWait, 1.0+xfer)
	}
	recvWait := col.total(KindSyncWait, "pb")
	if math.Abs(recvWait-xfer) > 1e-9 {
		t.Errorf("receiver sync wait = %v, want %v", recvWait, xfer)
	}
	// The transfer interval carries the message accounting exactly once.
	msgs := 0
	for _, iv := range col.ivs {
		msgs += iv.Msgs
	}
	if msgs != 1 {
		t.Errorf("msgs = %d, want 1", msgs)
	}
}

func TestBlockingSendFindsWaitingReceiver(t *testing.T) {
	// Receiver posts first; sender arrives later: receiver waits, sender
	// only pays the transfer.
	send := []Stmt{
		Compute{Module: "m", Function: "g", Mean: 2.0},
		Send{Module: "m", Function: "f", Tag: "t", Dst: 1, Bytes: 1000, Blocking: true},
	}
	recv := []Stmt{Recv{Module: "m", Function: "f", Tag: "t", Src: 0}}
	s, col := newSim(t, send, recv)
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	xfer := cfg.MsgLatency + 1000*cfg.SecPerByte
	if got := col.total(KindSyncWait, "pa"); math.Abs(got-xfer) > 1e-9 {
		t.Errorf("sender wait = %v, want %v", got, xfer)
	}
	if got := col.total(KindSyncWait, "pb"); math.Abs(got-(2.0+xfer)) > 1e-9 {
		t.Errorf("receiver wait = %v, want %v", got, 2.0+xfer)
	}
}

func TestEagerSendOverlapsCompute(t *testing.T) {
	// Non-blocking send posted before a long compute; the receiver's
	// message arrives during the sender's compute, so the receiver barely
	// waits and the sender never blocks.
	send := []Stmt{
		Send{Module: "m", Function: "f", Tag: "t", Dst: 1, Bytes: 0},
		Compute{Module: "m", Function: "g", Mean: 5.0},
	}
	recv := []Stmt{
		Compute{Module: "m", Function: "g", Mean: 1.0},
		Recv{Module: "m", Function: "f", Tag: "t", Src: 0},
	}
	s, col := newSim(t, send, recv)
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := col.total(KindSyncWait, "pa"); got != 0 {
		t.Errorf("eager sender waited %v", got)
	}
	if got := col.total(KindSyncWait, "pb"); got > 1e-6 {
		t.Errorf("receiver of already-arrived message waited %v", got)
	}
}

func TestEagerRecvBeforeSendWaits(t *testing.T) {
	// Receiver posts immediately; eager sender computes 2s first. The
	// receiver waits about 2s + overhead + transfer.
	send := []Stmt{
		Compute{Module: "m", Function: "g", Mean: 2.0},
		Send{Module: "m", Function: "f", Tag: "t", Dst: 1, Bytes: 0},
	}
	recv := []Stmt{Recv{Module: "m", Function: "f", Tag: "t", Src: 0}}
	s, col := newSim(t, send, recv)
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	got := col.total(KindSyncWait, "pb")
	if got < 2.0 || got > 2.01 {
		t.Errorf("receiver wait = %v, want about 2.0", got)
	}
}

func TestAllReduceReleasesTogether(t *testing.T) {
	mk := func(d float64) []Stmt {
		return []Stmt{
			Compute{Module: "m", Function: "f", Mean: d},
			AllReduce{Module: "m", Function: "f", Tag: "r"},
		}
	}
	s, col := newSim(t, mk(1.0), mk(3.0), mk(2.0))
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatal("collective deadlocked")
	}
	base := DefaultConfig().CollectiveBase
	// The earliest arriver (1s) waits 2s + base; the last waits only base.
	if got := col.total(KindSyncWait, "pa"); math.Abs(got-(2.0+base)) > 1e-9 {
		t.Errorf("pa wait = %v, want %v", got, 2.0+base)
	}
	if got := col.total(KindSyncWait, "pb"); math.Abs(got-base) > 1e-9 {
		t.Errorf("pb wait = %v, want %v", got, base)
	}
	// All finish at the same instant.
	ps := s.Processes()
	if math.Abs(ps[0].FinishedAt()-ps[1].FinishedAt()) > 1e-9 {
		t.Errorf("finish times differ: %v vs %v", ps[0].FinishedAt(), ps[1].FinishedAt())
	}
}

func TestTimeConservationPerProcess(t *testing.T) {
	// cpu + sync + io exactly equals each process's finish time: the
	// engine accounts for every moment of execution.
	mk := func(r int) []Stmt {
		var iter []Stmt
		iter = append(iter, Compute{Module: "m", Function: "work", Mean: 0.1 * float64(r+1), Jitter: 0.2})
		iter = append(iter, IO{Module: "m", Function: "ckpt", Mean: 0.01})
		if r == 0 {
			iter = append(iter, Recv{Module: "m", Function: "x", Tag: "t", Src: 1})
		} else {
			iter = append(iter, Send{Module: "m", Function: "x", Tag: "t", Dst: 0, Bytes: 512, Blocking: true})
		}
		iter = append(iter, AllReduce{Module: "m", Function: "red", Tag: "r"})
		return []Stmt{Loop{Count: 20, Body: iter}}
	}
	s, _ := newSim(t, mk(0), mk(1))
	if err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatal("did not finish")
	}
	for _, p := range s.Processes() {
		sum := p.Total(KindCPU) + p.Total(KindSyncWait) + p.Total(KindIOWait)
		if math.Abs(sum-p.FinishedAt()) > 1e-6 {
			t.Errorf("%s: cpu+sync+io = %v, finish = %v", p.Name(), sum, p.FinishedAt())
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	build := func() *Simulator {
		cfg := DefaultConfig()
		cfg.Seed = 42
		s := New(cfg)
		prog := []Stmt{Loop{Count: 50, Body: []Stmt{
			Compute{Module: "m", Function: "f", Mean: 0.1, Jitter: 0.3},
			AllReduce{Module: "m", Function: "f", Tag: "r"},
		}}}
		_, _ = s.AddProcess("p0", "n0", prog)
		_, _ = s.AddProcess("p1", "n1", prog)
		return s
	}
	s1, s2 := build(), build()
	if err := s1.Run(1000); err != nil {
		t.Fatal(err)
	}
	if err := s2.Run(1000); err != nil {
		t.Fatal(err)
	}
	for i := range s1.Processes() {
		a, b := s1.Processes()[i], s2.Processes()[i]
		if a.FinishedAt() != b.FinishedAt() || a.Total(KindCPU) != b.Total(KindCPU) {
			t.Errorf("run divergence for %s", a.Name())
		}
	}
}

func TestSlowdownStretchesCompute(t *testing.T) {
	cfg := DefaultConfig()
	s := New(cfg)
	_, _ = s.AddProcess("p0", "n0", []Stmt{Compute{Module: "m", Function: "f", Mean: 1.0}})
	s.SetSlowdown(func(proc string) float64 { return 1.5 })
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	p := s.Processes()[0]
	if math.Abs(p.FinishedAt()-1.5) > 1e-12 {
		t.Errorf("finish = %v, want 1.5", p.FinishedAt())
	}
	// Slowdown factors below 1 are clamped to 1 (instrumentation never
	// speeds the application up).
	s2 := New(cfg)
	_, _ = s2.AddProcess("p0", "n0", []Stmt{Compute{Module: "m", Function: "f", Mean: 1.0}})
	s2.SetSlowdown(func(proc string) float64 { return 0.1 })
	_ = s2.Run(100)
	if math.Abs(s2.Processes()[0].FinishedAt()-1.0) > 1e-12 {
		t.Error("slowdown below 1 was not clamped")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s, _ := newSim(t, []Stmt{Compute{Module: "m", Function: "f", Mean: 1.0}})
	if err := s.RunUntil(0.5); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 0.5 {
		t.Errorf("Now = %v", s.Now())
	}
	if s.Done() {
		t.Error("done too early")
	}
	if err := s.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Error("not done")
	}
	if s.Now() != 10 {
		t.Errorf("Now = %v, clock should advance to the requested time", s.Now())
	}
}

func TestEventCapCatchesZeroTimeLoops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxEvents = 1000
	s := New(cfg)
	prog := []Stmt{Loop{Count: -1, Body: []Stmt{Compute{Module: "m", Function: "f", Mean: 0}}}}
	_, _ = s.AddProcess("p0", "n0", prog)
	if err := s.Run(10); err == nil {
		t.Error("zero-time infinite loop not caught")
	}
}

func TestAddProcessValidation(t *testing.T) {
	s := New(DefaultConfig())
	if _, err := s.AddProcess("", "n", nil); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := s.AddProcess("p", "", nil); err == nil {
		t.Error("empty node accepted")
	}
	if _, err := s.AddProcess("p", "n", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddProcess("p", "n2", nil); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddProcess("q", "n", nil); err == nil {
		t.Error("AddProcess after Start accepted")
	}
	if err := s.Start(); err == nil {
		t.Error("double Start accepted")
	}
}

func TestStartWithoutProcesses(t *testing.T) {
	s := New(DefaultConfig())
	if err := s.Start(); err == nil {
		t.Error("Start with no processes accepted")
	}
}

func TestJitterStaysWithinBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	s := New(cfg)
	prog := []Stmt{Loop{Count: 200, Body: []Stmt{Compute{Module: "m", Function: "f", Mean: 1.0, Jitter: 0.25}}}}
	col := &collector{}
	s.AddObserver(col)
	_, _ = s.AddProcess("p0", "n0", prog)
	if err := s.Run(1e6); err != nil {
		t.Fatal(err)
	}
	for _, iv := range col.ivs {
		d := iv.Duration()
		if d < 0.75-1e-9 || d > 1.25+1e-9 {
			t.Fatalf("jittered duration %v out of [0.75,1.25]", d)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindCPU.String() != "cpu" || KindSyncWait.String() != "sync_wait" || KindIOWait.String() != "io_wait" {
		t.Error("Kind strings wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind string empty")
	}
}
