package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Kind classifies how a process spent an interval of time.
type Kind int

// Activity kinds. Every moment of a live process's execution belongs to
// exactly one kind, so per-process kind totals sum to the process's
// elapsed lifetime (a property the tests verify).
const (
	KindCPU      Kind = iota // executing user computation
	KindSyncWait             // blocked in message or collective synchronization
	KindIOWait               // blocked in I/O
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCPU:
		return "cpu"
	case KindSyncWait:
		return "sync_wait"
	case KindIOWait:
		return "io_wait"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Interval is one completed activity of one process. The string labels
// name the resources the activity is attributed to; Tag is empty for
// activities not associated with a synchronization object.
type Interval struct {
	Process, Node    string
	Module, Function string
	Tag              string
	Kind             Kind
	Start, End       float64
	Msgs, Bytes      int
	Calls            int
}

// Duration returns End-Start.
func (iv Interval) Duration() float64 { return iv.End - iv.Start }

// Observer receives every completed interval, in event order.
type Observer interface {
	OnInterval(Interval)
}

// Config holds the simulated machine's communication cost parameters.
type Config struct {
	MsgLatency     float64 // fixed per-message transfer latency (seconds)
	SecPerByte     float64 // additional transfer time per payload byte
	SendOverhead   float64 // CPU cost to initiate a non-blocking send
	RecvOverhead   float64 // CPU cost to complete an already-arrived receive
	CollectiveBase float64 // base latency of a collective operation
	Seed           int64   // RNG seed for duration jitter
	MaxEvents      int64   // safety cap on processed events (0 = default)
}

// DefaultConfig returns communication parameters loosely modeled on an
// IBM SP/2-class switch (tens of microseconds of latency, ~100 MB/s).
func DefaultConfig() Config {
	return Config{
		MsgLatency:     40e-6,
		SecPerByte:     1.0e-8,
		SendOverhead:   10e-6,
		RecvOverhead:   5e-6,
		CollectiveBase: 80e-6,
		Seed:           1,
		MaxEvents:      200_000_000,
	}
}

type event struct {
	at  float64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Process is one simulated application process.
type Process struct {
	rank int
	name string
	node string
	cur  *cursor

	blocked    bool
	done       bool
	finishedAt float64

	totals map[Kind]float64
	msgs   int
	bytes  int
	calls  int
}

// Name returns the process name (e.g. "poisson_0").
func (p *Process) Name() string { return p.name }

// Node returns the machine node the process runs on.
func (p *Process) Node() string { return p.node }

// Rank returns the process's index in AddProcess order.
func (p *Process) Rank() int { return p.rank }

// Done reports whether the process has finished its program.
func (p *Process) Done() bool { return p.done }

// FinishedAt returns the virtual time the process completed (only
// meaningful when Done).
func (p *Process) FinishedAt() float64 { return p.finishedAt }

// Total returns the accumulated time of the given kind.
func (p *Process) Total(k Kind) float64 { return p.totals[k] }

// Msgs returns the number of completed message operations charged to the
// process.
func (p *Process) Msgs() int { return p.msgs }

type msgKey struct {
	dst, src int
	tag      string
}

type message struct {
	arrival float64
	bytes   int
}

type pendingSend struct {
	p     *Process
	bytes int
	start float64
	fn    Send
}

type pendingRecv struct {
	p     *Process
	start float64
	fn    Recv
}

type collective struct {
	arrived []collArrival
	bytes   int
}

type collArrival struct {
	p     *Process
	start float64
	fn    AllReduce
}

// Simulator is the discrete-event engine.
type Simulator struct {
	cfg   Config
	now   float64
	seq   int64
	queue eventHeap
	rng   *rand.Rand

	procs     []*Process
	active    int
	started   bool
	processed int64

	channels     map[msgKey][]message
	pendingSends map[msgKey][]pendingSend
	pendingRecvs map[msgKey]*pendingRecv
	collectives  map[string]*collective

	observers []Observer
	slowdown  func(proc string) float64
}

// New creates a simulator with the given configuration.
func New(cfg Config) *Simulator {
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = DefaultConfig().MaxEvents
	}
	return &Simulator{
		cfg:          cfg,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		channels:     make(map[msgKey][]message),
		pendingSends: make(map[msgKey][]pendingSend),
		pendingRecvs: make(map[msgKey]*pendingRecv),
		collectives:  make(map[string]*collective),
	}
}

// AddProcess registers a process running prog on the named node. Must be
// called before Start. The process's rank is its registration order.
func (s *Simulator) AddProcess(name, node string, prog []Stmt) (*Process, error) {
	if s.started {
		return nil, fmt.Errorf("sim: cannot add process after Start")
	}
	if name == "" || node == "" {
		return nil, fmt.Errorf("sim: process and node names must be non-empty")
	}
	for _, q := range s.procs {
		if q.name == name {
			return nil, fmt.Errorf("sim: duplicate process name %q", name)
		}
	}
	p := &Process{
		rank:   len(s.procs),
		name:   name,
		node:   node,
		cur:    newCursor(prog),
		totals: make(map[Kind]float64),
	}
	s.procs = append(s.procs, p)
	return p, nil
}

// Processes returns the registered processes in rank order.
func (s *Simulator) Processes() []*Process {
	out := make([]*Process, len(s.procs))
	copy(out, s.procs)
	return out
}

// AddObserver registers an interval observer.
func (s *Simulator) AddObserver(o Observer) { s.observers = append(s.observers, o) }

// SetSlowdown installs the perturbation hook: compute durations are
// multiplied by the returned factor (>= 1) at schedule time. The dynamic
// instrumentation layer uses this to model probe overhead.
func (s *Simulator) SetSlowdown(f func(proc string) float64) { s.slowdown = f }

// Now returns the current virtual time.
func (s *Simulator) Now() float64 { return s.now }

// Done reports whether every process has completed its program.
func (s *Simulator) Done() bool { return s.started && s.active == 0 }

// Deadlocked reports whether the simulation can make no further progress:
// processes remain unfinished but no events are scheduled — every live
// process is blocked on a communication that can never complete (e.g. two
// blocking senders waiting on each other's receives).
func (s *Simulator) Deadlocked() bool {
	return s.started && s.active > 0 && len(s.queue) == 0
}

// BlockedProcesses returns the names of unfinished processes currently
// blocked in a send, receive or collective, for deadlock diagnostics.
func (s *Simulator) BlockedProcesses() []string {
	var out []string
	for _, p := range s.procs {
		if !p.done && p.blocked {
			out = append(out, p.name)
		}
	}
	return out
}

// EventsProcessed returns the number of events executed so far.
func (s *Simulator) EventsProcessed() int64 { return s.processed }

// Start schedules the first step of every process. Validation of each
// program against the process count happens here.
func (s *Simulator) Start() error {
	if s.started {
		return fmt.Errorf("sim: already started")
	}
	if len(s.procs) == 0 {
		return fmt.Errorf("sim: no processes")
	}
	s.started = true
	s.active = len(s.procs)
	for _, p := range s.procs {
		p := p
		s.schedule(0, func() { s.proceed(p) })
	}
	return nil
}

// RunUntil processes every event with timestamp <= t and advances the
// clock to t. It returns an error only if the event cap is exceeded
// (which indicates a zero-time loop in a workload program).
func (s *Simulator) RunUntil(t float64) error {
	if !s.started {
		if err := s.Start(); err != nil {
			return err
		}
	}
	for len(s.queue) > 0 && s.queue[0].at <= t {
		e := heap.Pop(&s.queue).(event)
		if e.at > s.now {
			s.now = e.at
		}
		s.processed++
		if s.processed > s.cfg.MaxEvents {
			return fmt.Errorf("sim: event cap %d exceeded at t=%.3f (zero-time loop?)", s.cfg.MaxEvents, s.now)
		}
		e.fn()
	}
	if t > s.now {
		s.now = t
	}
	return nil
}

// Run processes events until every process finishes or maxTime is
// reached.
func (s *Simulator) Run(maxTime float64) error {
	if !s.started {
		if err := s.Start(); err != nil {
			return err
		}
	}
	for !s.Done() && len(s.queue) > 0 && s.queue[0].at <= maxTime {
		if err := s.RunUntil(s.queue[0].at); err != nil {
			return err
		}
	}
	if s.Done() {
		return nil
	}
	if s.Deadlocked() {
		return fmt.Errorf("sim: deadlock at t=%.3f: processes %v are blocked forever",
			s.now, s.BlockedProcesses())
	}
	return s.RunUntil(maxTime)
}

func (s *Simulator) schedule(at float64, fn func()) {
	s.seq++
	heap.Push(&s.queue, event{at: at, seq: s.seq, fn: fn})
}

func (s *Simulator) emit(iv Interval) {
	if iv.End < iv.Start {
		iv.End = iv.Start
	}
	p := s.findProc(iv.Process)
	if p != nil {
		p.totals[iv.Kind] += iv.Duration()
		p.msgs += iv.Msgs
		p.bytes += iv.Bytes
		p.calls += iv.Calls
	}
	for _, o := range s.observers {
		o.OnInterval(iv)
	}
}

func (s *Simulator) findProc(name string) *Process {
	for _, p := range s.procs {
		if p.name == name {
			return p
		}
	}
	return nil
}

func (s *Simulator) slow(p *Process) float64 {
	if s.slowdown == nil {
		return 1
	}
	f := s.slowdown(p.name)
	if f < 1 {
		return 1
	}
	return f
}

func (s *Simulator) sample(mean, jitter float64) float64 {
	if jitter <= 0 {
		return mean
	}
	u := s.rng.Float64()*2 - 1
	d := mean * (1 + jitter*u)
	if d < 0 {
		return 0
	}
	return d
}

func (s *Simulator) xfer(bytes int) float64 {
	return s.cfg.MsgLatency + float64(bytes)*s.cfg.SecPerByte
}

// proceed executes the next statement of p at the current time.
func (s *Simulator) proceed(p *Process) {
	if p.done {
		return
	}
	st := p.cur.next()
	if st == nil {
		p.done = true
		p.finishedAt = s.now
		s.active--
		return
	}
	start := s.now
	switch op := st.(type) {
	case Compute:
		dur := s.sample(op.Mean, op.Jitter) * s.slow(p)
		s.schedule(start+dur, func() {
			s.emit(Interval{
				Process: p.name, Node: p.node, Module: op.Module, Function: op.Function,
				Kind: KindCPU, Start: start, End: s.now, Calls: 1,
			})
			s.proceed(p)
		})
	case IO:
		dur := s.sample(op.Mean, op.Jitter)
		s.schedule(start+dur, func() {
			s.emit(Interval{
				Process: p.name, Node: p.node, Module: op.Module, Function: op.Function,
				Kind: KindIOWait, Start: start, End: s.now, Calls: 1,
			})
			s.proceed(p)
		})
	case Send:
		s.doSend(p, op)
	case Recv:
		s.doRecv(p, op)
	case AllReduce:
		s.doReduce(p, op)
	case Barrier:
		s.doReduce(p, AllReduce{Module: op.Module, Function: op.Function, Tag: op.Tag})
	default:
		// Validate() rejects unknown statements before Start; skip defensively.
		s.schedule(start, func() { s.proceed(p) })
	}
}

func (s *Simulator) doSend(p *Process, op Send) {
	key := msgKey{dst: op.Dst, src: p.rank, tag: op.Tag}
	start := s.now
	if !op.Blocking {
		// Eager: pay copy overhead as CPU, deposit the message, and let
		// the arrival event wake any waiting receiver.
		overhead := s.cfg.SendOverhead * s.slow(p)
		arrival := start + overhead + s.xfer(op.Bytes)
		s.channels[key] = append(s.channels[key], message{arrival: arrival, bytes: op.Bytes})
		s.schedule(start+overhead, func() {
			s.emit(Interval{
				Process: p.name, Node: p.node, Module: op.Module, Function: op.Function,
				Tag: op.Tag, Kind: KindCPU, Start: start, End: s.now, Msgs: 1, Bytes: op.Bytes, Calls: 1,
			})
			s.proceed(p)
		})
		s.schedule(arrival, func() { s.deliver(key) })
		return
	}
	// Rendezvous: if the receiver is already waiting, the transfer starts
	// now; otherwise the sender blocks until the receive is posted.
	if pr := s.pendingRecvs[key]; pr != nil {
		delete(s.pendingRecvs, key)
		end := start + s.xfer(op.Bytes)
		recv := *pr
		recv.p.blocked = false
		s.schedule(end, func() {
			s.emit(Interval{
				Process: p.name, Node: p.node, Module: op.Module, Function: op.Function,
				Tag: op.Tag, Kind: KindSyncWait, Start: start, End: s.now, Msgs: 1, Bytes: op.Bytes, Calls: 1,
			})
			s.emit(Interval{
				Process: recv.p.name, Node: recv.p.node, Module: recv.fn.Module, Function: recv.fn.Function,
				Tag: recv.fn.Tag, Kind: KindSyncWait, Start: recv.start, End: s.now, Calls: 1,
			})
			s.proceed(p)
			s.proceed(recv.p)
		})
		return
	}
	s.pendingSends[key] = append(s.pendingSends[key], pendingSend{p: p, bytes: op.Bytes, start: start, fn: op})
	p.blocked = true
}

func (s *Simulator) doRecv(p *Process, op Recv) {
	key := msgKey{dst: p.rank, src: op.Src, tag: op.Tag}
	start := s.now
	// Eagerly sent message already in the channel?
	if q := s.channels[key]; len(q) > 0 {
		msg := q[0]
		s.channels[key] = q[1:]
		if msg.arrival <= start {
			// Already arrived: only the receive overhead is paid, as CPU.
			end := start + s.cfg.RecvOverhead*s.slow(p)
			s.schedule(end, func() {
				s.emit(Interval{
					Process: p.name, Node: p.node, Module: op.Module, Function: op.Function,
					Tag: op.Tag, Kind: KindCPU, Start: start, End: s.now, Calls: 1,
				})
				s.proceed(p)
			})
			return
		}
		// In flight: wait out the remaining transfer as synchronization.
		s.schedule(msg.arrival, func() {
			s.emit(Interval{
				Process: p.name, Node: p.node, Module: op.Module, Function: op.Function,
				Tag: op.Tag, Kind: KindSyncWait, Start: start, End: s.now, Calls: 1,
			})
			s.proceed(p)
		})
		return
	}
	// A blocking sender waiting in rendezvous?
	if ps := s.pendingSends[key]; len(ps) > 0 {
		rec := ps[0]
		s.pendingSends[key] = ps[1:]
		end := start + s.xfer(rec.bytes)
		s.schedule(end, func() {
			rec.p.blocked = false
			s.emit(Interval{
				Process: rec.p.name, Node: rec.p.node, Module: rec.fn.Module, Function: rec.fn.Function,
				Tag: rec.fn.Tag, Kind: KindSyncWait, Start: rec.start, End: s.now, Msgs: 1, Bytes: rec.bytes, Calls: 1,
			})
			s.emit(Interval{
				Process: p.name, Node: p.node, Module: op.Module, Function: op.Function,
				Tag: op.Tag, Kind: KindSyncWait, Start: start, End: s.now, Calls: 1,
			})
			s.proceed(rec.p)
			s.proceed(p)
		})
		return
	}
	// Nothing available: block until a message or sender shows up.
	s.pendingRecvs[key] = &pendingRecv{p: p, start: start, fn: op}
	p.blocked = true
}

// deliver wakes a receiver blocked on key if its message has arrived.
func (s *Simulator) deliver(key msgKey) {
	pr := s.pendingRecvs[key]
	if pr == nil {
		return
	}
	q := s.channels[key]
	if len(q) == 0 || q[0].arrival > s.now {
		return
	}
	s.channels[key] = q[1:]
	delete(s.pendingRecvs, key)
	pr.p.blocked = false
	s.emit(Interval{
		Process: pr.p.name, Node: pr.p.node, Module: pr.fn.Module, Function: pr.fn.Function,
		Tag: pr.fn.Tag, Kind: KindSyncWait, Start: pr.start, End: s.now, Calls: 1,
	})
	s.proceed(pr.p)
}

func (s *Simulator) doReduce(p *Process, op AllReduce) {
	c := s.collectives[op.Tag]
	if c == nil {
		c = &collective{}
		s.collectives[op.Tag] = c
	}
	c.arrived = append(c.arrived, collArrival{p: p, start: s.now, fn: op})
	if op.Bytes > c.bytes {
		c.bytes = op.Bytes
	}
	p.blocked = true
	if len(c.arrived) < s.liveProcs() {
		return
	}
	delete(s.collectives, op.Tag)
	release := s.now + s.cfg.CollectiveBase + float64(c.bytes)*s.cfg.SecPerByte
	for _, a := range c.arrived {
		a := a
		s.schedule(release, func() {
			a.p.blocked = false
			s.emit(Interval{
				Process: a.p.name, Node: a.p.node, Module: a.fn.Module, Function: a.fn.Function,
				Tag: a.fn.Tag, Kind: KindSyncWait, Start: a.start, End: s.now, Calls: 1,
			})
			s.proceed(a.p)
		})
	}
}

// liveProcs counts processes that have not finished; collectives complete
// when every live process arrives.
func (s *Simulator) liveProcs() int {
	n := 0
	for _, p := range s.procs {
		if !p.done {
			n++
		}
	}
	return n
}
