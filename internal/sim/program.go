// Package sim is a deterministic discrete-event simulator of a
// message-passing parallel machine. It substitutes for the paper's IBM
// SP/2 testbed: processes interpret small phase programs (compute, send,
// receive, reduce, I/O, loops) and the engine attributes every moment of
// each process's execution to an activity interval labeled with the code
// resource (module/function), process, machine node, and message tag.
// Interval streams drive the dynamic instrumentation layer exactly the way
// Paradyn's instrumented application drives its data manager.
package sim

import "fmt"

// Stmt is one statement of a simulated process's program.
type Stmt interface{ isStmt() }

// Compute burns CPU in the given function for Mean seconds (± Jitter
// fraction, sampled per execution). Instrumentation perturbation slows
// compute phases.
type Compute struct {
	Module, Function string
	Mean, Jitter     float64
}

// IO blocks the process in I/O waiting for Mean seconds (± Jitter).
type IO struct {
	Module, Function string
	Mean, Jitter     float64
}

// Send transmits Bytes to process Dst (rank) with message tag Tag.
// Blocking sends use rendezvous semantics: the sender waits in
// synchronization until the receiver posts the matching receive, then both
// wait out the transfer. Non-blocking sends deposit the message eagerly
// and cost the sender only a copy overhead of CPU time.
type Send struct {
	Module, Function string
	Tag              string
	Dst              int
	Bytes            int
	Blocking         bool
}

// Recv receives a message with tag Tag from process Src (rank). The
// process waits in synchronization until the message transfer completes.
type Recv struct {
	Module, Function string
	Tag              string
	Src              int
}

// AllReduce is a global collective over every process in the simulation:
// each arriving process waits until all have arrived, then all resume
// after the collective latency. Waiting time is synchronization time
// attributed to the statement's function and tag.
type AllReduce struct {
	Module, Function string
	Tag              string
	Bytes            int
}

// Barrier is a global synchronization point over every live process:
// each arriving process waits until all have arrived. It is a zero-byte
// collective; waiting time is synchronization time attributed to the
// statement's function and tag.
type Barrier struct {
	Module, Function string
	Tag              string
}

// Loop repeats Body Count times; Count <= 0 loops forever.
type Loop struct {
	Count int
	Body  []Stmt
}

func (Compute) isStmt()   {}
func (IO) isStmt()        {}
func (Send) isStmt()      {}
func (Recv) isStmt()      {}
func (AllReduce) isStmt() {}
func (Barrier) isStmt()   {}
func (Loop) isStmt()      {}

// frame is one level of the program interpreter's control stack.
type frame struct {
	body      []Stmt
	idx       int
	remaining int // loop iterations left; <0 means forever
	isLoop    bool
}

// cursor interprets a statement list with nested loops.
type cursor struct {
	stack []frame
}

func newCursor(prog []Stmt) *cursor {
	return &cursor{stack: []frame{{body: prog, remaining: 1}}}
}

// next returns the next primitive statement, descending into loops, or nil
// when the program is finished.
func (c *cursor) next() Stmt {
	for len(c.stack) > 0 {
		f := &c.stack[len(c.stack)-1]
		if f.idx >= len(f.body) {
			if f.isLoop {
				if f.remaining < 0 { // infinite
					f.idx = 0
					continue
				}
				f.remaining--
				if f.remaining > 0 {
					f.idx = 0
					continue
				}
			}
			c.stack = c.stack[:len(c.stack)-1]
			continue
		}
		st := f.body[f.idx]
		f.idx++
		if l, ok := st.(Loop); ok {
			if len(l.Body) == 0 || l.Count == 0 {
				continue
			}
			rem := l.Count
			if rem < 0 {
				rem = -1
			}
			c.stack = append(c.stack, frame{body: l.Body, remaining: rem, isLoop: true})
			continue
		}
		return st
	}
	return nil
}

// Validate checks a program for obvious construction errors (negative
// durations, self-sends, empty function names on primitives).
func Validate(prog []Stmt, nprocs int) error {
	return validateBlock(prog, nprocs, 0)
}

func validateBlock(prog []Stmt, nprocs, depth int) error {
	if depth > 64 {
		return fmt.Errorf("sim: loop nesting deeper than 64")
	}
	for i, st := range prog {
		switch s := st.(type) {
		case Compute:
			if s.Mean < 0 || s.Jitter < 0 || s.Jitter > 1 || s.Function == "" {
				return fmt.Errorf("sim: bad Compute at %d: %+v", i, s)
			}
		case IO:
			if s.Mean < 0 || s.Jitter < 0 || s.Jitter > 1 || s.Function == "" {
				return fmt.Errorf("sim: bad IO at %d: %+v", i, s)
			}
		case Send:
			if s.Dst < 0 || s.Dst >= nprocs || s.Bytes < 0 || s.Tag == "" || s.Function == "" {
				return fmt.Errorf("sim: bad Send at %d: %+v", i, s)
			}
		case Recv:
			if s.Src < 0 || s.Src >= nprocs || s.Tag == "" || s.Function == "" {
				return fmt.Errorf("sim: bad Recv at %d: %+v", i, s)
			}
		case AllReduce:
			if s.Tag == "" || s.Function == "" || s.Bytes < 0 {
				return fmt.Errorf("sim: bad AllReduce at %d: %+v", i, s)
			}
		case Barrier:
			if s.Tag == "" || s.Function == "" {
				return fmt.Errorf("sim: bad Barrier at %d: %+v", i, s)
			}
		case Loop:
			if err := validateBlock(s.Body, nprocs, depth+1); err != nil {
				return err
			}
		default:
			return fmt.Errorf("sim: unknown statement %T at %d", st, i)
		}
	}
	return nil
}
