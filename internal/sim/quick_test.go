package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomPipeline builds a deadlock-free random workload: every process
// runs compute/io phases, ring exchanges executed in a safe order, and a
// global reduce each iteration.
func randomPipeline(rng *rand.Rand, nprocs int) [][]Stmt {
	iters := 1 + rng.Intn(10)
	progs := make([][]Stmt, nprocs)
	loadScale := make([]float64, nprocs)
	for i := range loadScale {
		loadScale[i] = 0.05 + rng.Float64()*0.4
	}
	blocking := rng.Intn(2) == 0
	for r := 0; r < nprocs; r++ {
		var iter []Stmt
		iter = append(iter, Compute{Module: "m", Function: "work", Mean: loadScale[r], Jitter: rng.Float64() * 0.5})
		if rng.Intn(2) == 0 {
			iter = append(iter, IO{Module: "m", Function: "ckpt", Mean: 0.01, Jitter: 0.2})
		}
		next := (r + 1) % nprocs
		prev := (r - 1 + nprocs) % nprocs
		send := Send{Module: "m", Function: "x", Tag: "ring", Dst: next, Bytes: rng.Intn(4096), Blocking: blocking}
		recv := Recv{Module: "m", Function: "x", Tag: "ring", Src: prev}
		if blocking {
			// Safe ring order: even ranks send first, odd receive first;
			// with an odd process count rank 0 still pairs correctly
			// because its partner (n-1) receives first.
			if r%2 == 0 {
				iter = append(iter, send, recv)
			} else {
				iter = append(iter, recv, send)
			}
		} else {
			iter = append(iter, send, recv)
		}
		iter = append(iter, AllReduce{Module: "m", Function: "red", Tag: "r"})
		progs[r] = []Stmt{Loop{Count: iters, Body: iter}}
	}
	return progs
}

func TestQuickTimeConservation(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nprocs := 2 + rng.Intn(5)
		if nprocs%2 == 1 {
			nprocs++ // keep the pairing order safe for blocking rings
		}
		progs := randomPipeline(rng, nprocs)
		c := DefaultConfig()
		c.Seed = seed
		s := New(c)
		for i, p := range progs {
			if err := Validate(p, nprocs); err != nil {
				return false
			}
			if _, err := s.AddProcess(procName(i), nodeName(i), p); err != nil {
				return false
			}
		}
		if err := s.Run(1e6); err != nil {
			return false
		}
		if !s.Done() {
			return false
		}
		for _, p := range s.Processes() {
			sum := p.Total(KindCPU) + p.Total(KindSyncWait) + p.Total(KindIOWait)
			if math.Abs(sum-p.FinishedAt()) > 1e-6*(1+p.FinishedAt()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickIntervalsAreWellFormed(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nprocs := 2 * (1 + rng.Intn(3))
		progs := randomPipeline(rng, nprocs)
		c := DefaultConfig()
		c.Seed = seed
		s := New(c)
		col := &collector{}
		s.AddObserver(col)
		for i, p := range progs {
			if _, err := s.AddProcess(procName(i), nodeName(i), p); err != nil {
				return false
			}
		}
		if err := s.Run(1e6); err != nil {
			return false
		}
		lastEnd := make(map[string]float64)
		for _, iv := range col.ivs {
			if iv.End < iv.Start || iv.Start < 0 {
				return false
			}
			if iv.Function == "" || iv.Process == "" || iv.Node == "" {
				return false
			}
			// Intervals of one process never overlap: each begins at or
			// after the previous one's end.
			if iv.Start+1e-9 < lastEnd[iv.Process] {
				return false
			}
			if iv.End > lastEnd[iv.Process] {
				lastEnd[iv.Process] = iv.End
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMessageConservation(t *testing.T) {
	// Every send is eventually received: total message count equals
	// nprocs x iterations for the ring pattern.
	cfg := &quick.Config{MaxCount: 40}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nprocs := 2 * (1 + rng.Intn(3))
		progs := randomPipeline(rng, nprocs)
		c := DefaultConfig()
		c.Seed = seed
		s := New(c)
		col := &collector{}
		s.AddObserver(col)
		for i, p := range progs {
			if _, err := s.AddProcess(procName(i), nodeName(i), p); err != nil {
				return false
			}
		}
		if err := s.Run(1e6); err != nil || !s.Done() {
			return false
		}
		msgs := 0
		for _, iv := range col.ivs {
			msgs += iv.Msgs
		}
		// Recover the iteration count from the loop statement.
		iters := progs[0][0].(Loop).Count
		return msgs == nprocs*iters
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func procName(i int) string { return "proc" + string(rune('0'+i)) }
func nodeName(i int) string { return "node" + string(rune('0'+i)) }
