package sim

import (
	"math"
	"testing"
)

func TestQueuedBlockingSendersAreFIFO(t *testing.T) {
	// Two sequential blocking sends from p0 queue against late receives
	// from p1; payload sizes differ so the completion order proves FIFO.
	send := []Stmt{
		Send{Module: "m", Function: "f", Tag: "t", Dst: 1, Bytes: 1_000_000, Blocking: true},
		Send{Module: "m", Function: "f", Tag: "t", Dst: 1, Bytes: 0, Blocking: true},
	}
	recv := []Stmt{
		Compute{Module: "m", Function: "g", Mean: 1.0},
		Recv{Module: "m", Function: "f", Tag: "t", Src: 0},
		Recv{Module: "m", Function: "f", Tag: "t", Src: 0},
	}
	s, col := newSim(t, send, recv)
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatal("deadlock")
	}
	// The first (big) transfer completes before the second (small) one
	// begins: find the two sender sync intervals and check ordering and
	// sizes.
	var sends []Interval
	for _, iv := range col.ivs {
		if iv.Process == "pa" && iv.Kind == KindSyncWait {
			sends = append(sends, iv)
		}
	}
	if len(sends) != 2 {
		t.Fatalf("sender intervals = %d", len(sends))
	}
	if sends[0].Bytes != 1_000_000 || sends[1].Bytes != 0 {
		t.Errorf("FIFO violated: %+v", sends)
	}
	if sends[1].Start < sends[0].End-1e-9 {
		t.Errorf("second send overlapped the first: %+v", sends)
	}
}

func TestEagerMessagesSameKeyFIFO(t *testing.T) {
	send := []Stmt{
		Send{Module: "m", Function: "f", Tag: "t", Dst: 1, Bytes: 111},
		Send{Module: "m", Function: "f", Tag: "t", Dst: 1, Bytes: 222},
	}
	recv := []Stmt{
		Compute{Module: "m", Function: "g", Mean: 1.0},
		Recv{Module: "m", Function: "f", Tag: "t", Src: 0},
		Recv{Module: "m", Function: "f", Tag: "t", Src: 0},
	}
	s, _ := newSim(t, send, recv)
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatal("receives did not both complete")
	}
}

func TestCollectiveAmongSurvivors(t *testing.T) {
	// p0 finishes immediately; p1 and p2 still complete their collective
	// because only live processes participate.
	p0 := []Stmt{Compute{Module: "m", Function: "f", Mean: 0.1}}
	p12 := []Stmt{
		Compute{Module: "m", Function: "f", Mean: 1.0},
		AllReduce{Module: "m", Function: "f", Tag: "r"},
	}
	s, _ := newSim(t, p0, p12, p12)
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatal("collective deadlocked after a process exited")
	}
}

func TestRunStopsAtMaxTime(t *testing.T) {
	prog := []Stmt{Loop{Count: -1, Body: []Stmt{Compute{Module: "m", Function: "f", Mean: 1.0}}}}
	s, _ := newSim(t, prog)
	if err := s.Run(10.5); err != nil {
		t.Fatal(err)
	}
	if s.Done() {
		t.Error("infinite program reported done")
	}
	if s.Now() != 10.5 {
		t.Errorf("Now = %v", s.Now())
	}
	p := s.Processes()[0]
	if p.Total(KindCPU) < 9.5 || p.Total(KindCPU) > 10.5 {
		t.Errorf("cpu total = %v", p.Total(KindCPU))
	}
}

func TestProcessAccessors(t *testing.T) {
	send := []Stmt{Send{Module: "m", Function: "f", Tag: "t", Dst: 1, Bytes: 64, Blocking: true}}
	recv := []Stmt{Recv{Module: "m", Function: "f", Tag: "t", Src: 0}}
	s, _ := newSim(t, send, recv)
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	p := s.Processes()[0]
	if p.Name() != "pa" || p.Node() != "na" || p.Rank() != 0 {
		t.Errorf("accessors: %s %s %d", p.Name(), p.Node(), p.Rank())
	}
	if p.Msgs() != 1 {
		t.Errorf("Msgs = %d", p.Msgs())
	}
	if !p.Done() {
		t.Error("process not done")
	}
}

func TestSendThenComputeKeepsReceiverTimesExact(t *testing.T) {
	// Exact timing audit of a three-phase exchange round under zero
	// jitter: t=0 p0 sends eagerly (overhead o, arrival o+L), computes 1s;
	// p1 computes 0.4s then receives (waits until o+L if o+L > 0.4).
	cfg := DefaultConfig()
	o, L := cfg.SendOverhead, cfg.MsgLatency
	s := New(cfg)
	_, _ = s.AddProcess("p0", "n0", []Stmt{
		Send{Module: "m", Function: "f", Tag: "t", Dst: 1, Bytes: 0},
		Compute{Module: "m", Function: "g", Mean: 1.0},
	})
	_, _ = s.AddProcess("p1", "n1", []Stmt{
		Compute{Module: "m", Function: "g", Mean: 0.4},
		Recv{Module: "m", Function: "f", Tag: "t", Src: 0},
	})
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	p1 := s.Processes()[1]
	want := 0.4 + cfg.RecvOverhead // arrival (o+L << 0.4) precedes the recv
	if o+L > 0.4 {
		t.Fatalf("test premise broken: o+L = %v", o+L)
	}
	if math.Abs(p1.FinishedAt()-want) > 1e-9 {
		t.Errorf("p1 finished at %v, want %v", p1.FinishedAt(), want)
	}
}

func TestObserverSeesMonotonicEventOrder(t *testing.T) {
	// Interval completion times never go backwards in observer order.
	mk := func(r int) []Stmt {
		return []Stmt{Loop{Count: 30, Body: []Stmt{
			Compute{Module: "m", Function: "f", Mean: 0.05 * float64(r+1), Jitter: 0.3},
			AllReduce{Module: "m", Function: "red", Tag: "r"},
		}}}
	}
	s, col := newSim(t, mk(0), mk(1), mk(2))
	if err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	last := 0.0
	for _, iv := range col.ivs {
		if iv.End+1e-9 < last {
			t.Fatalf("interval completion went backwards: %v after %v", iv.End, last)
		}
		if iv.End > last {
			last = iv.End
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	mk := func(d float64) []Stmt {
		return []Stmt{
			Compute{Module: "m", Function: "f", Mean: d},
			Barrier{Module: "m", Function: "f", Tag: "b"},
		}
	}
	s, col := newSim(t, mk(0.5), mk(2.0))
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatal("barrier deadlocked")
	}
	base := DefaultConfig().CollectiveBase
	if got := col.total(KindSyncWait, "pa"); math.Abs(got-(1.5+base)) > 1e-9 {
		t.Errorf("early arriver waited %v, want %v", got, 1.5+base)
	}
	ps := s.Processes()
	if math.Abs(ps[0].FinishedAt()-ps[1].FinishedAt()) > 1e-9 {
		t.Error("barrier did not release processes together")
	}
}

func TestBarrierValidation(t *testing.T) {
	if err := Validate([]Stmt{Barrier{Module: "m", Function: "f"}}, 1); err == nil {
		t.Error("barrier without tag accepted")
	}
	if err := Validate([]Stmt{Barrier{Module: "m", Tag: "b"}}, 1); err == nil {
		t.Error("barrier without function accepted")
	}
	if err := Validate([]Stmt{Barrier{Module: "m", Function: "f", Tag: "b"}}, 1); err != nil {
		t.Errorf("valid barrier rejected: %v", err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	// Two processes blocking-send to each other with no receives: a
	// classic rendezvous deadlock. Run reports it instead of returning
	// silently.
	p0 := []Stmt{Send{Module: "m", Function: "f", Tag: "t", Dst: 1, Bytes: 1, Blocking: true}}
	p1 := []Stmt{Send{Module: "m", Function: "f", Tag: "t", Dst: 0, Bytes: 1, Blocking: true}}
	s, _ := newSim(t, p0, p1)
	err := s.Run(100)
	if err == nil {
		t.Fatal("deadlock not reported")
	}
	if !s.Deadlocked() {
		t.Error("Deadlocked() = false")
	}
	blocked := s.BlockedProcesses()
	if len(blocked) != 2 {
		t.Errorf("blocked = %v", blocked)
	}
}

func TestNoFalseDeadlockOnCompletion(t *testing.T) {
	s, _ := newSim(t, []Stmt{Compute{Module: "m", Function: "f", Mean: 1}})
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if s.Deadlocked() {
		t.Error("completed run reported deadlocked")
	}
	if len(s.BlockedProcesses()) != 0 {
		t.Error("completed run reports blocked processes")
	}
}

func TestBlockedFlagClearsAfterRendezvous(t *testing.T) {
	// Receiver posts first (blocked), then the sender arrives; after the
	// exchange nobody is marked blocked.
	send := []Stmt{
		Compute{Module: "m", Function: "g", Mean: 1.0},
		Send{Module: "m", Function: "f", Tag: "t", Dst: 1, Bytes: 1, Blocking: true},
		Compute{Module: "m", Function: "g", Mean: 1.0},
	}
	recv := []Stmt{
		Recv{Module: "m", Function: "f", Tag: "t", Src: 0},
		Compute{Module: "m", Function: "g", Mean: 1.0},
	}
	s, _ := newSim(t, send, recv)
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if !s.Done() || len(s.BlockedProcesses()) != 0 {
		t.Errorf("done=%v blocked=%v", s.Done(), s.BlockedProcesses())
	}
}

func TestRecvPrefersArrivedEagerOverWaitingBlockingSender(t *testing.T) {
	// Both an eager message and a blocked rendezvous sender wait on the
	// same key: the receiver consumes the channel (eager) message first;
	// a second receive then completes the rendezvous, and nothing
	// deadlocks.
	senderA := []Stmt{Send{Module: "m", Function: "f", Tag: "t", Dst: 2, Bytes: 0}} // eager
	senderB := []Stmt{Send{Module: "m", Function: "f", Tag: "t", Dst: 2, Bytes: 0, Blocking: true}}
	recv := []Stmt{
		Compute{Module: "m", Function: "g", Mean: 1.0},
		Recv{Module: "m", Function: "f", Tag: "t", Src: 0},
		Recv{Module: "m", Function: "f", Tag: "t", Src: 1},
	}
	s, _ := newSim(t, senderA, senderB, recv)
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatal("mixed eager/blocking exchange did not complete")
	}
}
