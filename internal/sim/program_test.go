package sim

import "testing"

func TestCursorFlatProgram(t *testing.T) {
	prog := []Stmt{
		Compute{Module: "m", Function: "f", Mean: 1},
		IO{Module: "m", Function: "f", Mean: 1},
	}
	c := newCursor(prog)
	if _, ok := c.next().(Compute); !ok {
		t.Fatal("first stmt not Compute")
	}
	if _, ok := c.next().(IO); !ok {
		t.Fatal("second stmt not IO")
	}
	if c.next() != nil {
		t.Fatal("program should be finished")
	}
	if c.next() != nil {
		t.Fatal("next after end should stay nil")
	}
}

func TestCursorLoopCount(t *testing.T) {
	prog := []Stmt{
		Loop{Count: 3, Body: []Stmt{Compute{Module: "m", Function: "f", Mean: 1}}},
		IO{Module: "m", Function: "g", Mean: 1},
	}
	c := newCursor(prog)
	for i := 0; i < 3; i++ {
		if _, ok := c.next().(Compute); !ok {
			t.Fatalf("iteration %d not Compute", i)
		}
	}
	if _, ok := c.next().(IO); !ok {
		t.Fatal("post-loop stmt not IO")
	}
	if c.next() != nil {
		t.Fatal("program should be finished")
	}
}

func TestCursorNestedLoops(t *testing.T) {
	prog := []Stmt{
		Loop{Count: 2, Body: []Stmt{
			Compute{Module: "m", Function: "outer", Mean: 1},
			Loop{Count: 3, Body: []Stmt{Compute{Module: "m", Function: "inner", Mean: 1}}},
		}},
	}
	c := newCursor(prog)
	var seq []string
	for st := c.next(); st != nil; st = c.next() {
		seq = append(seq, st.(Compute).Function)
	}
	want := []string{"outer", "inner", "inner", "inner", "outer", "inner", "inner", "inner"}
	if len(seq) != len(want) {
		t.Fatalf("seq = %v", seq)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("seq = %v, want %v", seq, want)
		}
	}
}

func TestCursorInfiniteLoop(t *testing.T) {
	prog := []Stmt{Loop{Count: -1, Body: []Stmt{Compute{Module: "m", Function: "f", Mean: 1}}}}
	c := newCursor(prog)
	for i := 0; i < 1000; i++ {
		if c.next() == nil {
			t.Fatal("infinite loop terminated")
		}
	}
}

func TestCursorEmptyAndZeroLoops(t *testing.T) {
	prog := []Stmt{
		Loop{Count: 0, Body: []Stmt{Compute{Module: "m", Function: "skipped", Mean: 1}}},
		Loop{Count: 2, Body: nil},
		Compute{Module: "m", Function: "after", Mean: 1},
	}
	c := newCursor(prog)
	st := c.next()
	cp, ok := st.(Compute)
	if !ok || cp.Function != "after" {
		t.Fatalf("got %v, want the trailing Compute", st)
	}
	if c.next() != nil {
		t.Fatal("should be done")
	}
}

func TestValidateAcceptsGoodProgram(t *testing.T) {
	prog := []Stmt{
		Compute{Module: "m", Function: "f", Mean: 0.1, Jitter: 0.1},
		Send{Module: "m", Function: "f", Tag: "t", Dst: 1, Bytes: 10, Blocking: true},
		Recv{Module: "m", Function: "f", Tag: "t", Src: 1},
		AllReduce{Module: "m", Function: "f", Tag: "r"},
		IO{Module: "m", Function: "f", Mean: 0.1},
		Loop{Count: -1, Body: []Stmt{Compute{Module: "m", Function: "g", Mean: 0.1}}},
	}
	if err := Validate(prog, 2); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	cases := []struct {
		name string
		prog []Stmt
	}{
		{"negative compute", []Stmt{Compute{Module: "m", Function: "f", Mean: -1}}},
		{"jitter > 1", []Stmt{Compute{Module: "m", Function: "f", Mean: 1, Jitter: 2}}},
		{"compute missing function", []Stmt{Compute{Module: "m", Mean: 1}}},
		{"bad io", []Stmt{IO{Module: "m", Function: "f", Mean: -0.1}}},
		{"send dst out of range", []Stmt{Send{Module: "m", Function: "f", Tag: "t", Dst: 5}}},
		{"send missing tag", []Stmt{Send{Module: "m", Function: "f", Dst: 1}}},
		{"send negative bytes", []Stmt{Send{Module: "m", Function: "f", Tag: "t", Dst: 1, Bytes: -1}}},
		{"recv src out of range", []Stmt{Recv{Module: "m", Function: "f", Tag: "t", Src: -1}}},
		{"reduce missing tag", []Stmt{AllReduce{Module: "m", Function: "f"}}},
		{"nested bad stmt", []Stmt{Loop{Count: 2, Body: []Stmt{Send{Module: "m", Function: "f", Tag: "t", Dst: 9}}}}},
	}
	for _, c := range cases {
		if err := Validate(c.prog, 2); err == nil {
			t.Errorf("%s: Validate succeeded", c.name)
		}
	}
}

func TestValidateRejectsDeepNesting(t *testing.T) {
	prog := []Stmt{Compute{Module: "m", Function: "f", Mean: 1}}
	for i := 0; i < 70; i++ {
		prog = []Stmt{Loop{Count: 2, Body: prog}}
	}
	if err := Validate(prog, 1); err == nil {
		t.Error("deeply nested program accepted")
	}
}
