package metric

import "testing"

func TestLookupAllMetrics(t *testing.T) {
	for _, id := range All {
		info, ok := Lookup(id)
		if !ok {
			t.Errorf("Lookup(%s) failed", id)
			continue
		}
		if info.ID != id {
			t.Errorf("info.ID = %s, want %s", info.ID, id)
		}
		if info.Units == "" || info.Doc == "" {
			t.Errorf("metric %s missing units or doc", id)
		}
		if !Valid(id) {
			t.Errorf("Valid(%s) = false", id)
		}
		if err := Validate(id); err != nil {
			t.Errorf("Validate(%s): %v", id, err)
		}
	}
}

func TestTimeMetricsAreNormalized(t *testing.T) {
	for _, id := range []ID{CPUTime, SyncWaitTime, IOWaitTime, ExecTime} {
		info, _ := Lookup(id)
		if !info.Normalized {
			t.Errorf("%s should be normalized", id)
		}
	}
	for _, id := range []ID{MsgCount, MsgBytes, ProcCalls} {
		info, _ := Lookup(id)
		if info.Normalized {
			t.Errorf("%s should be an event metric", id)
		}
	}
}

func TestUnknownMetric(t *testing.T) {
	if Valid("bogus") {
		t.Error("Valid(bogus) = true")
	}
	if err := Validate("bogus"); err == nil {
		t.Error("Validate(bogus) succeeded")
	}
	if _, ok := Lookup("bogus"); ok {
		t.Error("Lookup(bogus) succeeded")
	}
}

func TestIDString(t *testing.T) {
	if CPUTime.String() != "cpu_time" {
		t.Errorf("String = %q", CPUTime.String())
	}
}
