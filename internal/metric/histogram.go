package metric

import (
	"fmt"
	"math"
)

// TimeHistogram accumulates a metric's value over virtual time in fixed
// width bins, in the style of Paradyn's dataManager. Values are added as
// (interval, amount) pairs and spread proportionally over the bins the
// interval covers. The histogram grows on demand.
type TimeHistogram struct {
	binWidth float64
	bins     []float64
	total    float64
	maxTime  float64
	// maxBins, when positive, bounds memory: once an interval would need
	// more bins, adjacent bins are folded together (pairwise merge,
	// doubling the bin width) — the mechanism Paradyn's dataManager used
	// to keep histograms of arbitrarily long executions in fixed space.
	maxBins int
	folds   int
}

// NewTimeHistogram creates an unbounded histogram with the given bin
// width in (virtual) seconds.
func NewTimeHistogram(binWidth float64) (*TimeHistogram, error) {
	if binWidth <= 0 || math.IsNaN(binWidth) || math.IsInf(binWidth, 0) {
		return nil, fmt.Errorf("metric: bin width must be positive, got %v", binWidth)
	}
	return &TimeHistogram{binWidth: binWidth}, nil
}

// NewFoldingTimeHistogram creates a histogram that never allocates more
// than maxBins bins: when an interval lands beyond the last bin, adjacent
// bins are merged pairwise and the bin width doubles. maxBins must be at
// least 2.
func NewFoldingTimeHistogram(binWidth float64, maxBins int) (*TimeHistogram, error) {
	h, err := NewTimeHistogram(binWidth)
	if err != nil {
		return nil, err
	}
	if maxBins < 2 {
		return nil, fmt.Errorf("metric: maxBins must be >= 2, got %d", maxBins)
	}
	h.maxBins = maxBins
	return h, nil
}

// Folds returns how many times the histogram has folded (each fold
// doubles the bin width).
func (h *TimeHistogram) Folds() int { return h.folds }

// BinWidth returns the histogram's bin width.
func (h *TimeHistogram) BinWidth() float64 { return h.binWidth }

// NumBins returns the number of allocated bins.
func (h *TimeHistogram) NumBins() int { return len(h.bins) }

// Total returns the sum over all bins.
func (h *TimeHistogram) Total() float64 { return h.total }

// MaxTime returns the largest interval end observed.
func (h *TimeHistogram) MaxTime() float64 { return h.maxTime }

// Add spreads amount uniformly over [start, end). A zero-length interval
// deposits the whole amount into the bin containing start.
func (h *TimeHistogram) Add(start, end, amount float64) error {
	if start < 0 || end < start || math.IsNaN(amount) {
		return fmt.Errorf("metric: bad interval [%v,%v) amount %v", start, end, amount)
	}
	if amount == 0 {
		return nil
	}
	if end > h.maxTime {
		h.maxTime = end
	}
	h.grow(end)
	h.total += amount
	if end == start {
		h.bins[h.binIndex(start)] += amount
		return nil
	}
	dur := end - start
	first := h.binIndex(start)
	last := h.binIndex(math.Nextafter(end, 0)) // bin containing the instant just before end
	for b := first; b <= last; b++ {
		lo := math.Max(start, float64(b)*h.binWidth)
		hi := math.Min(end, float64(b+1)*h.binWidth)
		if hi > lo {
			h.bins[b] += amount * (hi - lo) / dur
		}
	}
	return nil
}

// Sum returns the accumulated amount in [start, end), interpolating within
// partially covered bins.
func (h *TimeHistogram) Sum(start, end float64) float64 {
	if end <= start || len(h.bins) == 0 {
		return 0
	}
	limit := float64(len(h.bins)) * h.binWidth
	if start >= limit {
		return 0
	}
	if end > limit {
		end = limit
	}
	first := h.binIndex(start)
	last := h.binIndex(math.Nextafter(end, 0))
	if last >= len(h.bins) {
		last = len(h.bins) - 1
	}
	var sum float64
	for b := first; b <= last; b++ {
		lo := math.Max(start, float64(b)*h.binWidth)
		hi := math.Min(end, float64(b+1)*h.binWidth)
		if hi > lo {
			sum += h.bins[b] * (hi - lo) / h.binWidth
		}
	}
	return sum
}

// Rate returns Sum(start,end)/(end-start), the average value per second of
// virtual time over the window.
func (h *TimeHistogram) Rate(start, end float64) float64 {
	if end <= start {
		return 0
	}
	return h.Sum(start, end) / (end - start)
}

// Bin returns the accumulated value of bin i.
func (h *TimeHistogram) Bin(i int) float64 {
	if i < 0 || i >= len(h.bins) {
		return 0
	}
	return h.bins[i]
}

func (h *TimeHistogram) binIndex(t float64) int {
	i := int(t / h.binWidth)
	if i < 0 {
		return 0
	}
	return i
}

func (h *TimeHistogram) grow(end float64) {
	need := h.binIndex(math.Nextafter(end, 0)) + 1
	if end == 0 {
		need = 1
	}
	for h.maxBins > 0 && need > h.maxBins {
		h.fold()
		need = h.binIndex(math.Nextafter(end, 0)) + 1
	}
	for len(h.bins) < need {
		h.bins = append(h.bins, 0)
	}
}

// fold merges adjacent bin pairs and doubles the bin width, preserving
// the total and all window sums at the coarser resolution.
func (h *TimeHistogram) fold() {
	half := (len(h.bins) + 1) / 2
	folded := make([]float64, half, h.maxBins)
	for i, v := range h.bins {
		folded[i/2] += v
	}
	h.bins = folded
	h.binWidth *= 2
	h.folds++
}
