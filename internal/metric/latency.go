package metric

import (
	"math"
	"time"
)

// latGrowth is the geometric bucket growth factor of a LatencyHistogram.
// Each bucket's upper bound is ~5% above the previous one, so any
// reported quantile is within 5% (one bucket width) of the true sample
// — the resolution the load harness's p50/p99/p999 numbers carry.
const latGrowth = 1.05

// latMaxNanos caps the bucket table at ~4.6 hours; slower samples clamp
// into the last bucket (Max still reports the exact value).
const latMaxNanos = int64(1) << 44

// latBounds[i] is the inclusive upper bound, in nanoseconds, of bucket
// i. Bucket 0 covers (0, 1]; bucket i covers (latBounds[i-1],
// latBounds[i]]. The table is immutable after init, so histograms can
// share it without locking.
var latBounds = func() []int64 {
	var bounds []int64
	b := int64(1)
	for b < latMaxNanos {
		bounds = append(bounds, b)
		next := int64(math.Ceil(float64(b) * latGrowth))
		if next <= b {
			next = b + 1
		}
		b = next
	}
	return append(bounds, latMaxNanos)
}()

// latBucket returns the bucket index for a sample of n nanoseconds.
func latBucket(n int64) int {
	if n <= 1 {
		return 0
	}
	// Binary search the immutable bounds table: first bucket whose upper
	// bound is >= n.
	lo, hi := 0, len(latBounds)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if latBounds[mid] >= n {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// LatencyHistogram accumulates duration samples into geometric buckets
// (5% growth) and answers quantile queries with bounded relative error:
// a reported quantile is at most one bucket width (~5%) above the true
// sample value, and never outside the observed [Min, Max] range.
//
// Histograms merge exactly — recording a sample stream into one
// histogram and recording a partition of it into several then Merging
// them produce identical state — which is how the load harness combines
// per-worker recordings without cross-worker locking. A LatencyHistogram
// is not safe for concurrent use; give each goroutine its own and Merge.
type LatencyHistogram struct {
	counts   []uint64
	count    uint64
	sum      int64 // nanoseconds
	min, max int64 // nanoseconds; valid when count > 0
}

// NewLatencyHistogram returns an empty latency histogram.
func NewLatencyHistogram() *LatencyHistogram {
	return &LatencyHistogram{}
}

// Record adds one duration sample. Non-positive durations count as 1ns
// (the smallest representable sample).
func (h *LatencyHistogram) Record(d time.Duration) {
	n := int64(d)
	if n < 1 {
		n = 1
	}
	b := latBucket(n)
	if b >= len(h.counts) {
		grown := make([]uint64, b+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[b]++
	h.count++
	h.sum += n
	if h.count == 1 || n < h.min {
		h.min = n
	}
	if n > h.max {
		h.max = n
	}
}

// Count returns the number of recorded samples.
func (h *LatencyHistogram) Count() uint64 { return h.count }

// Min returns the smallest recorded sample (0 when empty).
func (h *LatencyHistogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the largest recorded sample (0 when empty).
func (h *LatencyHistogram) Max() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.max)
}

// Mean returns the arithmetic mean of the recorded samples (0 when
// empty). Unlike quantiles it is exact: the sum is tracked outside the
// buckets.
func (h *LatencyHistogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.count))
}

// Quantile returns the q-quantile (q in [0, 1]) of the recorded
// samples: the upper bound of the bucket holding the ceil(q*count)-th
// smallest sample, clamped to the observed [Min, Max]. The clamp makes
// Quantile exact for empty (0), single-sample, and extreme-q queries;
// elsewhere the answer is within one bucket width (~5%) above the true
// sample. q outside [0, 1] is clamped.
func (h *LatencyHistogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if math.IsNaN(q) || q <= 0 {
		return time.Duration(h.min)
	}
	if q >= 1 {
		return time.Duration(h.max)
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum >= rank {
			v := latBounds[b]
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Merge folds other into h. Merging is exact: the result is identical
// to having recorded other's samples into h directly. other is left
// unchanged; a nil or empty other is a no-op.
func (h *LatencyHistogram) Merge(other *LatencyHistogram) {
	if other == nil || other.count == 0 {
		return
	}
	if len(other.counts) > len(h.counts) {
		grown := make([]uint64, len(other.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for b, c := range other.counts {
		h.counts[b] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}
