package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustHist(t *testing.T, w float64) *TimeHistogram {
	t.Helper()
	h, err := NewTimeHistogram(w)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewTimeHistogramValidation(t *testing.T) {
	for _, w := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewTimeHistogram(w); err == nil {
			t.Errorf("NewTimeHistogram(%v) succeeded", w)
		}
	}
}

func TestAddAndSumSingleBin(t *testing.T) {
	h := mustHist(t, 1.0)
	if err := h.Add(0.2, 0.8, 0.6); err != nil {
		t.Fatal(err)
	}
	if got := h.Sum(0, 1); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Sum(0,1) = %v, want 0.6", got)
	}
	if h.NumBins() != 1 {
		t.Errorf("NumBins = %d", h.NumBins())
	}
}

func TestAddSpreadsProportionally(t *testing.T) {
	h := mustHist(t, 1.0)
	// [0.5, 2.5): half of bin 0's coverage is 0.5s, bin 1 full 1s, bin 2 0.5s.
	if err := h.Add(0.5, 2.5, 2.0); err != nil {
		t.Fatal(err)
	}
	if got := h.Bin(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("bin0 = %v, want 0.5", got)
	}
	if got := h.Bin(1); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("bin1 = %v, want 1.0", got)
	}
	if got := h.Bin(2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("bin2 = %v, want 0.5", got)
	}
	if got := h.Total(); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("Total = %v", got)
	}
	if got := h.MaxTime(); got != 2.5 {
		t.Errorf("MaxTime = %v", got)
	}
}

func TestZeroLengthIntervalDeposit(t *testing.T) {
	h := mustHist(t, 0.5)
	if err := h.Add(1.2, 1.2, 3.0); err != nil {
		t.Fatal(err)
	}
	if got := h.Sum(1.0, 1.5); math.Abs(got-3.0) > 1e-12 {
		t.Errorf("Sum around instant deposit = %v", got)
	}
}

func TestAddValidation(t *testing.T) {
	h := mustHist(t, 1.0)
	if err := h.Add(-1, 0, 1); err == nil {
		t.Error("negative start accepted")
	}
	if err := h.Add(2, 1, 1); err == nil {
		t.Error("end < start accepted")
	}
	if err := h.Add(0, 1, math.NaN()); err == nil {
		t.Error("NaN amount accepted")
	}
	if err := h.Add(0, 1, 0); err != nil {
		t.Errorf("zero amount rejected: %v", err)
	}
}

func TestSumPartialWindows(t *testing.T) {
	h := mustHist(t, 1.0)
	_ = h.Add(0, 4, 4.0) // 1.0 per bin
	if got := h.Sum(0.5, 1.5); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Sum(0.5,1.5) = %v, want 1.0", got)
	}
	if got := h.Sum(3.5, 10); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Sum(3.5,10) = %v, want 0.5", got)
	}
	if got := h.Sum(10, 20); got != 0 {
		t.Errorf("Sum beyond data = %v", got)
	}
	if got := h.Sum(2, 2); got != 0 {
		t.Errorf("empty window = %v", got)
	}
}

func TestRate(t *testing.T) {
	h := mustHist(t, 0.5)
	_ = h.Add(0, 2, 1.0) // 0.5 value per second
	if got := h.Rate(0, 2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Rate = %v, want 0.5", got)
	}
	if got := h.Rate(1, 1); got != 0 {
		t.Errorf("Rate of empty window = %v", got)
	}
}

func TestBinOutOfRange(t *testing.T) {
	h := mustHist(t, 1.0)
	_ = h.Add(0, 1, 1)
	if h.Bin(-1) != 0 || h.Bin(100) != 0 {
		t.Error("out-of-range bins should read 0")
	}
}

func TestQuickConservation(t *testing.T) {
	// Total always equals the sum of all added amounts, and a full-range
	// Sum recovers it, for random interval sequences and bin widths.
	cfg := &quick.Config{MaxCount: 200}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, err := NewTimeHistogram(0.1 + rng.Float64()*2)
		if err != nil {
			return false
		}
		var want float64
		end := 0.0
		for i := 0; i < 50; i++ {
			s := rng.Float64() * 100
			e := s + rng.Float64()*10
			a := rng.Float64() * 5
			if err := h.Add(s, e, a); err != nil {
				return false
			}
			want += a
			if e > end {
				end = e
			}
		}
		if math.Abs(h.Total()-want) > 1e-9*math.Max(1, want) {
			return false
		}
		got := h.Sum(0, end+h.BinWidth())
		return math.Abs(got-want) < 1e-6*math.Max(1, want)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDisjointWindowsSumToTotal(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	prop := func(seed int64, cut float64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, _ := NewTimeHistogram(0.25)
		for i := 0; i < 20; i++ {
			s := rng.Float64() * 10
			_ = h.Add(s, s+rng.Float64()*3, rng.Float64())
		}
		c := math.Mod(math.Abs(cut), 15)
		lo := h.Sum(0, c)
		hi := h.Sum(c, 20)
		return math.Abs(lo+hi-h.Total()) < 1e-6
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestFoldingHistogram(t *testing.T) {
	h, err := NewFoldingTimeHistogram(1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		_ = h.Add(float64(i), float64(i)+1, 1.0)
	}
	if h.Folds() != 0 || h.BinWidth() != 1.0 {
		t.Fatalf("premature fold: folds=%d width=%v", h.Folds(), h.BinWidth())
	}
	// The fifth second forces one fold: width 2, bins [2,2,1,0...].
	_ = h.Add(4, 5, 1.0)
	if h.Folds() != 1 || h.BinWidth() != 2.0 {
		t.Fatalf("fold state: folds=%d width=%v", h.Folds(), h.BinWidth())
	}
	if h.NumBins() > 4 {
		t.Errorf("bins = %d exceeds cap", h.NumBins())
	}
	if math.Abs(h.Total()-5.0) > 1e-12 {
		t.Errorf("total after fold = %v", h.Total())
	}
	if got := h.Sum(0, 10); math.Abs(got-5.0) > 1e-12 {
		t.Errorf("full sum after fold = %v", got)
	}
	// Coarser resolution, but conservation within merged pairs holds.
	if got := h.Sum(0, 2); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("Sum(0,2) = %v", got)
	}
}

func TestFoldingHistogramValidation(t *testing.T) {
	if _, err := NewFoldingTimeHistogram(1.0, 1); err == nil {
		t.Error("maxBins 1 accepted")
	}
	if _, err := NewFoldingTimeHistogram(0, 8); err == nil {
		t.Error("zero width accepted")
	}
}

func TestQuickFoldingConservesTotal(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		maxBins := 2 + rng.Intn(30)
		h, err := NewFoldingTimeHistogram(0.1+rng.Float64(), maxBins)
		if err != nil {
			return false
		}
		var want float64
		end := 0.0
		for i := 0; i < 40; i++ {
			s := rng.Float64() * 500
			e := s + rng.Float64()*20
			a := rng.Float64() * 3
			if err := h.Add(s, e, a); err != nil {
				return false
			}
			want += a
			if e > end {
				end = e
			}
		}
		if h.NumBins() > maxBins {
			return false
		}
		if math.Abs(h.Total()-want) > 1e-6*(1+want) {
			return false
		}
		got := h.Sum(0, end+2*h.BinWidth())
		return math.Abs(got-want) < 1e-6*(1+want)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
