// Package metric defines the continuously measured values the Performance
// Consultant tests hypotheses against, and time-histogram storage for
// sampled metric data.
//
// Paradyn metrics are time-normalized: a value of 0.45 for sync_wait over
// a focus covering four processes means 45% of the total execution time of
// those processes was spent in synchronization waiting.
package metric

import "fmt"

// ID names a metric.
type ID string

// The metrics used by the Performance Consultant's hypothesis set.
const (
	CPUTime      ID = "cpu_time"        // time executing user computation
	SyncWaitTime ID = "sync_wait"       // time blocked in synchronization (message waits)
	IOWaitTime   ID = "io_wait"         // time blocked in I/O
	ExecTime     ID = "exec_time"       // elapsed wall time per process (denominator metric)
	MsgCount     ID = "msg_count"       // messages completed
	MsgBytes     ID = "msg_bytes"       // message payload bytes
	ProcCalls    ID = "procedure_calls" // function activations
)

// All lists every defined metric.
var All = []ID{CPUTime, SyncWaitTime, IOWaitTime, ExecTime, MsgCount, MsgBytes, ProcCalls}

// Info describes a metric's units and aggregation style.
type Info struct {
	ID    ID
	Units string
	// Normalized metrics are divided by observed wall time (and focus
	// width) before threshold comparison; event metrics are rates.
	Normalized bool
	Doc        string
}

var infos = map[ID]Info{
	CPUTime:      {CPUTime, "seconds/second", true, "CPU time spent computing"},
	SyncWaitTime: {SyncWaitTime, "seconds/second", true, "time blocked waiting on synchronization"},
	IOWaitTime:   {IOWaitTime, "seconds/second", true, "time blocked waiting on I/O"},
	ExecTime:     {ExecTime, "seconds/second", true, "elapsed execution time"},
	MsgCount:     {MsgCount, "operations/second", false, "messages sent or received"},
	MsgBytes:     {MsgBytes, "bytes/second", false, "message payload volume"},
	ProcCalls:    {ProcCalls, "calls/second", false, "procedure activations"},
}

// Lookup returns metadata for a metric.
func Lookup(id ID) (Info, bool) {
	in, ok := infos[id]
	return in, ok
}

// Valid reports whether id names a defined metric.
func Valid(id ID) bool {
	_, ok := infos[id]
	return ok
}

// String implements fmt.Stringer.
func (id ID) String() string { return string(id) }

// Validate returns an error for an unknown metric.
func Validate(id ID) error {
	if !Valid(id) {
		return fmt.Errorf("metric: unknown metric %q", id)
	}
	return nil
}
