package metric

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestLatencyEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Count() != 0 {
		t.Errorf("Count = %d", h.Count())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("Quantile(%v) on empty = %v, want 0", q, got)
		}
	}
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty stats: mean=%v min=%v max=%v", h.Mean(), h.Min(), h.Max())
	}
}

func TestLatencyOneSample(t *testing.T) {
	h := NewLatencyHistogram()
	h.Record(123456 * time.Nanosecond)
	want := 123456 * time.Nanosecond
	// Every quantile of a single sample is that sample exactly: the
	// min/max clamp must defeat bucket rounding.
	for _, q := range []float64{0, 0.001, 0.5, 0.999, 1} {
		if got := h.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if h.Count() != 1 || h.Mean() != want || h.Min() != want || h.Max() != want {
		t.Errorf("single-sample stats: count=%d mean=%v min=%v max=%v",
			h.Count(), h.Mean(), h.Min(), h.Max())
	}
}

func TestLatencyNonPositiveClampsToOneNano(t *testing.T) {
	h := NewLatencyHistogram()
	h.Record(0)
	h.Record(-time.Second)
	if h.Count() != 2 || h.Min() != time.Nanosecond || h.Max() != time.Nanosecond {
		t.Errorf("clamp: count=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
	}
}

// TestLatencyQuantileAccuracyBound pins the documented accuracy
// contract against known distributions: the reported quantile lies in
// [true sample, true sample * growth], i.e. never below the true value
// and at most one bucket width (5%) above it.
func TestLatencyQuantileAccuracyBound(t *testing.T) {
	distributions := map[string]func(r *rand.Rand) int64{
		// Uniform over four decades.
		"uniform": func(r *rand.Rand) int64 { return 1 + r.Int63n(10_000_000) },
		// Exponential with a 1ms mean — the arrival-process shape.
		"exponential": func(r *rand.Rand) int64 { return 1 + int64(r.ExpFloat64()*1e6) },
		// Log-normal: heavy tail, the worst case for linear bucketing.
		"lognormal": func(r *rand.Rand) int64 {
			return 1 + int64(math.Exp(r.NormFloat64()*2+10))
		},
	}
	for name, draw := range distributions {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			h := NewLatencyHistogram()
			const n = 50_000
			samples := make([]int64, n)
			for i := range samples {
				samples[i] = draw(r)
				h.Record(time.Duration(samples[i]))
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 0.9999} {
				rank := int(math.Ceil(q*float64(n))) - 1
				exact := samples[rank]
				got := int64(h.Quantile(q))
				if got < exact {
					t.Errorf("q=%v: got %d below exact %d", q, got, exact)
				}
				if limit := int64(math.Ceil(float64(exact) * latGrowth)); got > limit {
					t.Errorf("q=%v: got %d exceeds %d (exact %d +5%%)", q, got, limit, exact)
				}
			}
			if got, want := int64(h.Quantile(0)), samples[0]; got != want {
				t.Errorf("q=0: got %d, want min %d", got, want)
			}
			if got, want := int64(h.Quantile(1)), samples[n-1]; got != want {
				t.Errorf("q=1: got %d, want max %d", got, want)
			}
		})
	}
}

// TestLatencyMergeExact proves merging per-worker histograms is
// byte-for-byte the same as recording everything into one — counts,
// quantiles, and moments all agree.
func TestLatencyMergeExact(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	whole := NewLatencyHistogram()
	parts := []*LatencyHistogram{
		NewLatencyHistogram(), NewLatencyHistogram(), NewLatencyHistogram(),
	}
	for i := 0; i < 30_000; i++ {
		d := time.Duration(1 + r.Int63n(5_000_000))
		whole.Record(d)
		parts[i%len(parts)].Record(d)
	}
	merged := NewLatencyHistogram()
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != whole.Count() || merged.Mean() != whole.Mean() ||
		merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merged stats differ: count %d/%d mean %v/%v min %v/%v max %v/%v",
			merged.Count(), whole.Count(), merged.Mean(), whole.Mean(),
			merged.Min(), whole.Min(), merged.Max(), whole.Max())
	}
	for q := 0.0; q <= 1.0; q += 0.001 {
		if m, w := merged.Quantile(q), whole.Quantile(q); m != w {
			t.Fatalf("Quantile(%v): merged %v != whole %v", q, m, w)
		}
	}
}

func TestLatencyMergeEmptyAndNil(t *testing.T) {
	h := NewLatencyHistogram()
	h.Record(time.Millisecond)
	h.Merge(nil)
	h.Merge(NewLatencyHistogram())
	if h.Count() != 1 || h.Quantile(0.5) != time.Millisecond {
		t.Errorf("merge of nil/empty changed state: count=%d p50=%v", h.Count(), h.Quantile(0.5))
	}
	// Merging into an empty histogram adopts the other's extrema.
	dst := NewLatencyHistogram()
	dst.Merge(h)
	if dst.Min() != time.Millisecond || dst.Max() != time.Millisecond || dst.Count() != 1 {
		t.Errorf("merge into empty: min=%v max=%v count=%d", dst.Min(), dst.Max(), dst.Count())
	}
}

func TestLatencyBucketTableMonotonic(t *testing.T) {
	for i := 1; i < len(latBounds); i++ {
		if latBounds[i] <= latBounds[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %d <= %d", i, latBounds[i], latBounds[i-1])
		}
	}
	// Oversized samples clamp into the last bucket instead of growing it.
	h := NewLatencyHistogram()
	h.Record(time.Duration(latMaxNanos * 2))
	if h.Count() != 1 || h.Max() != time.Duration(latMaxNanos*2) {
		t.Errorf("oversized sample: count=%d max=%v", h.Count(), h.Max())
	}
	if got := h.Quantile(0.5); got != time.Duration(latMaxNanos*2) {
		t.Errorf("oversized quantile clamps to observed max, got %v", got)
	}
}
