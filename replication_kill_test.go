package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/client"
	"repro/internal/harness"
	"repro/internal/history"
	"repro/internal/replica"
	"repro/internal/server"
)

// The kill-the-primary harness: a real replicated pair — sharded pcd
// primary, pcd follower — takes sustained mixed load, the primary is
// SIGKILLed mid-stream, the follower is promoted, and the keyspace must
// come through with zero acknowledged-write loss and query results
// byte-identical to a run that was never faulted. The companion test
// SIGKILLs the follower between a frame apply and its offset persist
// and requires idempotent re-apply to converge. These are the PR's
// end-to-end proofs; internal/replica tests the layers in isolation.

// fsckReplica runs pcfsck -store dir -primary primaryDir and returns
// its exit code and output.
func fsckReplica(t *testing.T, bin, dir, primaryDir string) (int, string) {
	t.Helper()
	out, err := exec.Command(filepath.Join(bin, "pcfsck"), "-store", dir, "-primary", primaryDir).CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("pcfsck -primary: %v\n%s", err, out)
	}
	return ee.ExitCode(), string(out)
}

// daemonStats fetches and decodes a daemon's /statsz.
func daemonStats(t *testing.T, url string) *server.StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return &stats
}

// waitReplication polls a primary's /statsz until ok accepts every
// shard's replication gauges.
func waitReplication(t *testing.T, url, what string, ok func(replica.ShardReplStats) bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		stats := daemonStats(t, url)
		if r := stats.Replication; r != nil && len(r.Shards) > 0 {
			good := true
			for _, sh := range r.Shards {
				if !ok(sh) {
					good = false
					break
				}
			}
			if good {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("replication never reached state: %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// promoteAll asks a follower daemon to take over every shard.
func promoteAll(t *testing.T, folURL string, wantShards int) {
	t.Helper()
	body, err := json.Marshal(replica.PromoteRequest{Shard: -1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(folURL+"/api/v1/replica/promote", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr replica.PromoteResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(pr.Promoted) != wantShards {
		t.Fatalf("promote all: HTTP %d, promoted %v, want %d shards", resp.StatusCode, pr.Promoted, wantShards)
	}
}

// TestKillPrimaryFailover is the acceptance harness: a two-shard
// primary with one follower takes mixed writes and reads, the primary
// is SIGKILLed mid-stream, the follower is promoted and absorbs the
// rest of the load. Every write acknowledged by the primary must be
// readable from the follower byte-identically (the semi-sync gate's
// guarantee), and once the full workload lands, the follower's merged
// query results must be byte-identical to a daemon that never crashed.
func TestKillPrimaryFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and kills processes")
	}
	bin := buildTools(t, "pcd", "pcfsck")
	ctx := context.Background()

	// One real session provides a valid record to clone per write; the
	// version alternates A/B so the workload spans both shard keyspaces.
	a, err := app.Build("poisson", "A", app.Options{NodeOffset: 1, PidBase: 4000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := harness.DefaultSessionConfig()
	cfg.MaxTime = 5000
	res, err := harness.RunSession(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const total = 30
	record := func(i int) *history.RunRecord {
		rec := *res.Record
		rec.RunID = fmt.Sprintf("w%04d", i)
		if i%2 == 1 {
			rec.Version = "B"
		}
		return &rec
	}

	// Reference: the same 30 records on a daemon that is never faulted,
	// queried once for the canonical result bytes.
	refStore := filepath.Join(t.TempDir(), "ref-store")
	ref := startDaemon(t, bin, "-store", refStore, "-addr", "127.0.0.1:0", "-create", "-shards", "2")
	refCl := client.New(ref.url)
	if err := refCl.WaitHealthy(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if _, err := refCl.PutRun(ctx, record(i)); err != nil {
			t.Fatalf("reference put %d: %v", i, err)
		}
	}
	want, err := refCl.QueryRaw(ctx, client.QueryParams{App: "poisson"})
	if err != nil {
		t.Fatal(err)
	}
	ref.stop(t)

	// The replicated pair. The primary arms the semi-sync gate
	// (-replicas 1); the follower adopts the primary's shard layout.
	primStore := filepath.Join(t.TempDir(), "prim-store")
	folStore := filepath.Join(t.TempDir(), "fol-store")
	prim := startDaemon(t, bin,
		"-store", primStore, "-addr", "127.0.0.1:0", "-create",
		"-shards", "2", "-replicas", "1", "-promote")
	fol := startDaemon(t, bin,
		"-store", folStore, "-addr", "127.0.0.1:0", "-create",
		"-follow", prim.url)
	primCl := client.New(prim.url)
	folCl := client.New(fol.url)
	if err := primCl.WaitHealthy(ctx); err != nil {
		t.Fatal(err)
	}
	if err := folCl.WaitHealthy(ctx); err != nil {
		t.Fatal(err)
	}
	// Until the follower's first pull the gate degrades to async acks;
	// wait for it to attach so every acknowledged write below is gated.
	waitReplication(t, prim.url, "follower attached on every shard",
		func(sh replica.ShardReplStats) bool { return len(sh.Followers) > 0 })

	// Mixed load against the primary; SIGKILL arrives asynchronously
	// mid-stream. Only an acknowledged write creates an obligation — and
	// the gate means each one reached the follower before its ack.
	acked := map[int][]byte{} // index -> canonical record bytes as acked
	next := 0
	killAt := time.After(300 * time.Millisecond)
	killed := false
	for !killed && next < total {
		select {
		case <-killAt:
			prim.kill(t)
			killed = true
		default:
			rec := record(next)
			if _, err := primCl.PutRun(ctx, rec); err == nil {
				data, merr := server.MarshalCanonical(rec)
				if merr != nil {
					t.Fatal(merr)
				}
				acked[next] = data
			}
			// Every few writes, read an acked record back from the
			// follower: replicas serve reads while replicating.
			if next%5 == 4 {
				for i := next; i >= 0; i-- {
					if acked[i] == nil {
						continue
					}
					rec := record(i)
					got, err := folCl.GetRun(ctx, "poisson", rec.Version+":"+rec.RunID)
					if err != nil {
						t.Fatalf("read of acked write %s from the follower failed mid-load: %v", rec.RunID, err)
					}
					if data, _ := server.MarshalCanonical(got); !bytes.Equal(data, acked[i]) {
						t.Fatalf("follower serves different bytes for %s than were acknowledged", rec.RunID)
					}
					break
				}
			}
			next++
		}
	}
	if !killed {
		prim.kill(t)
	}
	if len(acked) == 0 {
		t.Fatal("no write was ever acknowledged before the kill; the harness proved nothing")
	}

	// The primary is gone. Reads must still serve from the follower —
	// before any promotion.
	for i := 0; i < total; i++ {
		if acked[i] == nil {
			continue
		}
		rec := record(i)
		if _, err := folCl.GetRun(ctx, "poisson", rec.Version+":"+rec.RunID); err != nil {
			t.Fatalf("follower stopped serving reads during the outage (%s): %v", rec.RunID, err)
		}
		break
	}

	// Whole-primary death: promote every shard, then verify zero
	// acked-write loss — each write the dead primary acknowledged must be
	// on the follower byte-identically.
	promoteAll(t, fol.url, 2)
	for i, wantRec := range acked {
		rec := record(i)
		got, err := folCl.GetRun(ctx, "poisson", rec.Version+":"+rec.RunID)
		if err != nil {
			t.Fatalf("acked write %s lost after primary SIGKILL + promotion: %v", rec.RunID, err)
		}
		data, err := server.MarshalCanonical(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, wantRec) {
			t.Fatalf("record %s differs from its acked bytes after failover", rec.RunID)
		}
	}

	// Writes resume against the promoted follower: land the rest of the
	// workload (including anything that raced the kill unacknowledged).
	for i := 0; i < total; i++ {
		if acked[i] != nil {
			continue
		}
		rec := record(i)
		if _, err := folCl.PutRun(ctx, rec); err != nil {
			t.Fatalf("write %s refused after promotion: %v", rec.RunID, err)
		}
		data, err := server.MarshalCanonical(rec)
		if err != nil {
			t.Fatal(err)
		}
		acked[i] = data
	}

	// With the full workload landed, the failed-over keyspace must answer
	// queries byte-identically to the never-faulted reference.
	got, err := folCl.QueryRaw(ctx, client.QueryParams{App: "poisson"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("failed-over query results differ from the unfaulted run:\n got: %s\nwant: %s", got, want)
	}

	// The follower drains clean and its store verifies clean. The
	// primary's store took a SIGKILL: crash residue (grade 1) is legal,
	// corruption is not — and the cross-replica check must find no
	// divergence (post-promotion extras grade as residue, not corrupt).
	fol.stop(t)
	if code, out := fsck(t, bin, folStore, false); code != 0 {
		t.Fatalf("pcfsck grades the failed-over follower store %d:\n%s", code, out)
	}
	if code, out := fsck(t, bin, primStore, false); code == 2 {
		t.Fatalf("pcfsck grades the killed primary store corrupt:\n%s", out)
	}
	if code, out := fsckReplica(t, bin, folStore, primStore); code == 2 {
		t.Fatalf("cross-replica verification found divergence:\n%s", out)
	}
}

// TestKillFollowerMidApply SIGKILLs a follower between a frame apply
// and its offset ack — simulated exactly, by rewinding the persisted
// replica position after the kill, which is what a crash in that window
// leaves behind — restarts it, and requires idempotent re-apply to
// converge to a store byte-identical to the primary's fold: pcfsck
// -primary must grade the pair perfectly clean.
func TestKillFollowerMidApply(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and kills processes")
	}
	bin := buildTools(t, "pcd", "pcfsck")
	ctx := context.Background()

	a, err := app.Build("poisson", "A", app.Options{NodeOffset: 1, PidBase: 4000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := harness.DefaultSessionConfig()
	cfg.MaxTime = 5000
	res, err := harness.RunSession(a, cfg)
	if err != nil {
		t.Fatal(err)
	}

	primStore := filepath.Join(t.TempDir(), "prim-store")
	folStore := filepath.Join(t.TempDir(), "fol-store")
	prim := startDaemon(t, bin,
		"-store", primStore, "-addr", "127.0.0.1:0", "-create", "-replicas", "1")
	fol := startDaemon(t, bin,
		"-store", folStore, "-addr", "127.0.0.1:0", "-create", "-follow", prim.url)
	primCl := client.New(prim.url)
	if err := primCl.WaitHealthy(ctx); err != nil {
		t.Fatal(err)
	}
	waitReplication(t, prim.url, "follower attached",
		func(sh replica.ShardReplStats) bool { return len(sh.Followers) > 0 })

	const phase1 = 12
	put := func(cl *client.Client, i int) {
		t.Helper()
		rec := *res.Record
		rec.RunID = fmt.Sprintf("r%04d", i)
		if _, err := cl.PutRun(ctx, &rec); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < phase1; i++ {
		put(primCl, i)
	}
	// Every write above was gated on the follower's ack, so its applied
	// position has reached the head. SIGKILL it there.
	waitReplication(t, prim.url, "follower caught up",
		func(sh replica.ShardReplStats) bool {
			for _, f := range sh.Followers {
				if f.AckSeq == sh.HeadSeq {
					return true
				}
			}
			return false
		})
	fol.kill(t)

	// A crash between ApplyReplicated and the position persist leaves
	// records on disk that the durable offset does not yet admit to.
	// Reproduce that window deterministically: rewind applied_seq while
	// keeping the applied records.
	statePath := filepath.Join(folStore, "replica", "STATE.json")
	data, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatal(err)
	}
	var state map[string]any
	if err := json.Unmarshal(data, &state); err != nil {
		t.Fatal(err)
	}
	applied, ok := state["applied_seq"].(float64)
	if !ok || applied < phase1 {
		t.Fatalf("follower state applied_seq = %v, want >= %d", state["applied_seq"], phase1)
	}
	state["applied_seq"] = applied / 2
	if data, err = json.Marshal(state); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(statePath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Restart the follower. It resumes from the rewound position, and the
	// primary's frame ring re-delivers entries already applied: re-apply
	// must be idempotent (same entries, same bytes).
	fol2 := startDaemon(t, bin,
		"-store", folStore, "-addr", "127.0.0.1:0", "-follow", prim.url)
	folCl := client.New(fol2.url)
	if err := folCl.WaitHealthy(ctx); err != nil {
		t.Fatal(err)
	}
	waitReplication(t, prim.url, "restarted follower re-attached and caught up",
		func(sh replica.ShardReplStats) bool {
			for _, f := range sh.Followers {
				if f.ID == fol2.url && f.AckSeq == sh.HeadSeq {
					return true
				}
			}
			return false
		})

	// More gated writes prove the restarted follower is a first-class
	// replica again, not just a reader of old frames.
	const total = phase1 + 3
	for i := phase1; i < total; i++ {
		put(primCl, i)
	}
	waitReplication(t, prim.url, "follower applied the post-restart writes",
		func(sh replica.ShardReplStats) bool {
			for _, f := range sh.Followers {
				if f.ID == fol2.url && f.AckSeq == sh.HeadSeq {
					return true
				}
			}
			return false
		})

	// Convergence, record by record: the follower serves every write
	// byte-identically to what the primary acknowledged.
	for i := 0; i < total; i++ {
		rec := *res.Record
		rec.RunID = fmt.Sprintf("r%04d", i)
		want, err := server.MarshalCanonical(&rec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := folCl.GetRun(ctx, "poisson", rec.Version+":"+rec.RunID)
		if err != nil {
			t.Fatalf("record %s missing from the restarted follower: %v", rec.RunID, err)
		}
		data, err := server.MarshalCanonical(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, want) {
			t.Fatalf("record %s diverged after idempotent re-apply", rec.RunID)
		}
	}

	// Both stores drain clean, and the cross-replica fold comparison must
	// be perfect: no lag, no extras, no divergence — exit 0.
	fol2.stop(t)
	prim.stop(t)
	if code, out := fsck(t, bin, folStore, false); code != 0 {
		t.Fatalf("pcfsck grades the follower store %d:\n%s", code, out)
	}
	if code, out := fsck(t, bin, primStore, false); code != 0 {
		t.Fatalf("pcfsck grades the primary store %d:\n%s", code, out)
	}
	if code, out := fsckReplica(t, bin, folStore, primStore); code != 0 {
		t.Fatalf("cross-replica verification not clean (exit %d):\n%s", code, out)
	}
}
