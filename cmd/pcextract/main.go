// Command pcextract harvests search directives from one or more stored run
// records and writes them in the directive text format, optionally after
// combining multiple sources (intersection or union) and inferring
// resource mappings toward a target run's namespace.
//
// Usage:
//
//	pcextract -store DIR -app poisson -version A -run-id run1 \
//	          [-general-prunes] [-historic-prunes] [-false-pair-prunes]
//	          [-priorities] [-thresholds] [-combine and|or]
//	          [-map-to VERSION:RUNID] [-o FILE]
//
// or, harvesting postmortem from a raw trace file (no Performance
// Consultant results needed):
//
//	pcextract -trace trace.jsonl -app poisson -version C [-o FILE]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/history"
	"repro/internal/postmortem"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcextract: ")

	var (
		storeDir  = flag.String("store", "", "history store directory (required unless -trace is given)")
		traceFile = flag.String("trace", "", "harvest postmortem from this raw trace file instead of stored runs")
		appName   = flag.String("app", "poisson", "application name")
		version   = flag.String("version", "", "code version of the source run(s)")
		runIDs    = flag.String("run-id", "run1", "comma-separated run ids to harvest")
		combine   = flag.String("combine", "and", "how to combine multiple sources: and | or")
		mapTo     = flag.String("map-to", "", "VERSION:RUNID of a target run; inferred mappings rewrite directives into its namespace")
		outFile   = flag.String("o", "", "output file (default stdout)")
		general   = flag.Bool("general-prunes", true, "emit general pruning directives")
		historic  = flag.Bool("historic-prunes", true, "emit historic pruning directives")
		falsePair = flag.Bool("false-pair-prunes", false, "prune pairs that tested false")
		prios     = flag.Bool("priorities", true, "emit priority directives")
		thresh    = flag.Bool("thresholds", true, "emit threshold directives")
	)
	flag.Parse()
	opt := core.HarvestOptions{
		GeneralPrunes:   *general,
		HistoricPrunes:  *historic,
		FalsePairPrunes: *falsePair,
		Priorities:      *prios,
		Thresholds:      *thresh,
	}

	if *traceFile != "" {
		rec, err := harvestTrace(*traceFile, *appName, *version)
		if err != nil {
			log.Fatal(err)
		}
		emit(core.Harvest(rec, opt), *outFile)
		return
	}
	if *storeDir == "" {
		log.Fatal("-store is required (or use -trace)")
	}
	// Open-existing: a mistyped -store must fail, not harvest nothing.
	st, err := history.OpenStoreAuto(*storeDir, 0, history.DurableOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, issue := range st.ScanIssues() {
		fmt.Fprintf(os.Stderr, "pcextract: warning: skipped %s\n", issue)
	}
	// The harvest → combine → map pipeline is the environment's (shared
	// with the pcd service); the store interns records, so repeated
	// -run-id entries harvest once.
	env := harness.NewEnv(st)
	var refs []string
	for _, id := range strings.Split(*runIDs, ",") {
		refs = append(refs, *version+":"+strings.TrimSpace(id))
	}
	ds, maps, err := env.HarvestRuns(*appName, refs, opt, *combine, *mapTo)
	if err != nil {
		log.Fatal(err)
	}
	if *mapTo != "" {
		fmt.Fprintf(os.Stderr, "inferred %d mappings:\n%s", len(maps), core.FormatMappings(maps))
	}

	emit(ds, *outFile)
}

// emit writes the directive set to the output file or stdout.
func emit(ds *core.DirectiveSet, outFile string) {
	out := os.Stdout
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := core.WriteDirectives(out, ds); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d directives (%d prunes, %d priorities, %d thresholds)\n",
		ds.Len(), len(ds.Prunes), len(ds.Priorities), len(ds.Thresholds))
}

// harvestTrace evaluates the hypotheses postmortem over a raw trace file
// and returns a run record for the ordinary harvester. The execution's
// resources and processes are reconstructed from the trace itself.
func harvestTrace(path, appName, version string) (*history.RunRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rec, err := postmortem.ReadTrace(f)
	if err != nil {
		return nil, err
	}
	space, procs, err := rec.InferExecution()
	if err != nil {
		return nil, err
	}
	ev, err := postmortem.NewEvaluator(space, procs, rec, 0)
	if err != nil {
		return nil, err
	}
	return ev.BuildRecord(appName, version, "trace", nil)
}
