// Command pcquery queries the multi-execution performance data store:
// list stored runs, select (hypothesis : focus) outcomes across runs, and
// report the bottlenecks that persist across a whole tuning study. It
// reads a store directory directly, or — with -server — asks a running
// pcd daemon, with identical output either way.
//
// Usage:
//
//	pcquery (-store DIR | -server URL) -app poisson [-version C] [-list]
//	        [-hyp NAME] [-focus SUBSTRING] [-state true|false] [-min 0.2]
//	        [-persistent N] [-specific -ref VERSION:RUNID] [-json]
//	        [-timeout 30s] [-retries 3]
//
// With -server, each request carries a -timeout deadline and transient
// failures (connection trouble, 503s from a degraded daemon) are
// retried -retries times with exponential backoff before giving up.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcquery: ")
	var (
		storeDir   = flag.String("store", "", "history store directory (or use -server)")
		serverURL  = flag.String("server", "", "pcd server URL (alternative to -store)")
		appName    = flag.String("app", "poisson", "application name")
		version    = flag.String("version", "", "code version filter (empty = all)")
		list       = flag.Bool("list", false, "list stored run records and exit")
		hyp        = flag.String("hyp", "", "hypothesis name filter")
		focus      = flag.String("focus", "", "focus substring filter")
		state      = flag.String("state", "true", "state filter: true | false | '' (any concluded) | *")
		minValue   = flag.Float64("min", 0, "minimum measured value")
		persistent = flag.Int("persistent", 0, "report pairs true in at least N runs, then exit")
		specific   = flag.Bool("specific", false, "report only the most specific bottlenecks of one run (requires -ref, or -version and -run-id)")
		runID      = flag.String("run-id", "run1", "run id for -specific")
		ref        = flag.String("ref", "", "run as VERSION:RUNID for -specific (alternative to -version/-run-id)")
		limit      = flag.Int("limit", 25, "maximum results to print (text mode)")
		jsonOut    = flag.Bool("json", false, "emit the wire-format JSON document instead of text")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-request deadline with -server (0 = none)")
		retries    = flag.Int("retries", 3, "retries of transient request failures with -server")
	)
	flag.Parse()
	if (*storeDir == "") == (*serverURL == "") {
		log.Fatal("exactly one of -store and -server is required")
	}

	// Both modes produce the service's wire shapes; text rendering and
	// -json encoding are shared below, so -store and -server output are
	// byte-identical.
	var src source
	if *serverURL != "" {
		src = &remoteSource{c: client.NewResilient(*serverURL, *retries), timeout: *timeout}
	} else {
		st, err := history.OpenStoreAuto(*storeDir, 0, history.DurableOptions{})
		if err != nil {
			log.Fatal(err)
		}
		for _, issue := range st.ScanIssues() {
			log.Printf("warning: skipped %s", issue)
		}
		src = &storeSource{st: st}
	}

	emit := func(v any) {
		data, err := server.MarshalCanonical(v)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
	}

	if *list {
		names, err := src.List()
		if err != nil {
			log.Fatal(err)
		}
		if *jsonOut {
			emit(server.RunsResponse{Runs: names})
			return
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	if *specific {
		runRef := *ref
		if runRef == "" {
			runRef = *version + ":" + *runID
		}
		resp, err := src.Specific(*appName, runRef)
		if err != nil {
			log.Fatal(err)
		}
		if *jsonOut {
			emit(resp)
			return
		}
		fmt.Printf("most specific bottlenecks of %s-%s/%s (%d of %d true pairs):\n",
			resp.App, resp.Version, resp.RunID, len(resp.Results), resp.TrueCount)
		for i, nr := range resp.Results {
			if i == *limit {
				break
			}
			fmt.Printf("  value=%.3f  %s %s\n", nr.Value, nr.Hyp, nr.Focus)
		}
		return
	}

	if *persistent > 0 {
		resp, err := src.Persistent(*appName, *version, *persistent)
		if err != nil {
			log.Fatal(err)
		}
		if *jsonOut {
			emit(resp)
			return
		}
		fmt.Printf("bottlenecks true in >= %d runs of %s:\n", resp.MinRuns, resp.App)
		for _, p := range resp.Pairs {
			fmt.Printf("  %2d runs  %s\n", p.Runs, p.Key)
		}
		return
	}

	resp, err := src.Query(client.QueryParams{
		App: *appName, Version: *version,
		Hyp: *hyp, Focus: *focus, State: *state, Min: *minValue,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		emit(resp)
		return
	}
	fmt.Printf("%d matching results", len(resp.Hits))
	if len(resp.Hits) > *limit {
		fmt.Printf(" (showing %d)", *limit)
	}
	fmt.Println()
	for i, h := range resp.Hits {
		if i == *limit {
			break
		}
		fmt.Printf("  %-10s value=%.3f [%s] %s %s\n",
			h.Version+"/"+h.RunID, h.Result.Value, h.Result.State, h.Result.Hyp, h.Result.Focus)
	}
}

// source yields the wire shapes from either a local store or a pcd
// server.
type source interface {
	List() ([]string, error)
	Query(p client.QueryParams) (*server.QueryResponse, error)
	Persistent(app, version string, minRuns int) (*server.PersistentResponse, error)
	Specific(app, ref string) (*server.SpecificResponse, error)
}

type storeSource struct{ st history.Storage }

func (s *storeSource) List() ([]string, error) { return s.st.List() }

func (s *storeSource) Query(p client.QueryParams) (*server.QueryResponse, error) {
	hits, err := s.st.Query(p.App, p.Version, history.ResultFilter{
		Hyp: p.Hyp, FocusContains: p.Focus, State: p.State, MinValue: p.Min,
	})
	if err != nil {
		return nil, err
	}
	return &server.QueryResponse{App: p.App, Hits: server.WireQueryHits(hits)}, nil
}

func (s *storeSource) Persistent(app, version string, minRuns int) (*server.PersistentResponse, error) {
	counts, err := s.st.PersistentBottlenecks(app, version, minRuns)
	if err != nil {
		return nil, err
	}
	return &server.PersistentResponse{
		App: app, MinRuns: minRuns, Pairs: server.SortedPersistent(counts),
	}, nil
}

func (s *storeSource) Specific(app, ref string) (*server.SpecificResponse, error) {
	key, err := history.ParseRunKey(app, ref)
	if err != nil {
		return nil, err
	}
	rec, err := s.st.Load(key.App, key.Version, key.RunID)
	if err != nil {
		return nil, err
	}
	return &server.SpecificResponse{
		App:       rec.App,
		Version:   rec.Version,
		RunID:     rec.RunID,
		TrueCount: rec.TrueCount,
		Results:   core.MostSpecificBottlenecks(rec),
	}, nil
}

type remoteSource struct {
	c       *client.Client
	timeout time.Duration
}

// ctx derives one request's context, bounded by -timeout.
func (r *remoteSource) ctx() (context.Context, context.CancelFunc) {
	if r.timeout > 0 {
		return context.WithTimeout(context.Background(), r.timeout)
	}
	return context.Background(), func() {}
}

func (r *remoteSource) List() ([]string, error) {
	ctx, cancel := r.ctx()
	defer cancel()
	return r.c.ListRuns(ctx, "", "")
}

func (r *remoteSource) Query(p client.QueryParams) (*server.QueryResponse, error) {
	ctx, cancel := r.ctx()
	defer cancel()
	return r.c.Query(ctx, p)
}

func (r *remoteSource) Persistent(app, version string, minRuns int) (*server.PersistentResponse, error) {
	ctx, cancel := r.ctx()
	defer cancel()
	return r.c.Persistent(ctx, app, version, minRuns)
}

func (r *remoteSource) Specific(app, ref string) (*server.SpecificResponse, error) {
	ctx, cancel := r.ctx()
	defer cancel()
	return r.c.Specific(ctx, app, ref)
}
