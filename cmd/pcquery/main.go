// Command pcquery queries the multi-execution performance data store:
// list stored runs, select (hypothesis : focus) outcomes across runs, and
// report the bottlenecks that persist across a whole tuning study.
//
// Usage:
//
//	pcquery -store DIR -app poisson [-version C] [-list]
//	        [-hyp NAME] [-focus SUBSTRING] [-state true|false] [-min 0.2]
//	        [-persistent N]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/history"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcquery: ")
	var (
		storeDir   = flag.String("store", "", "history store directory (required)")
		appName    = flag.String("app", "poisson", "application name")
		version    = flag.String("version", "", "code version filter (empty = all)")
		list       = flag.Bool("list", false, "list stored run records and exit")
		hyp        = flag.String("hyp", "", "hypothesis name filter")
		focus      = flag.String("focus", "", "focus substring filter")
		state      = flag.String("state", "true", "state filter: true | false | '' (any concluded) | *")
		minValue   = flag.Float64("min", 0, "minimum measured value")
		persistent = flag.Int("persistent", 0, "report pairs true in at least N runs, then exit")
		specific   = flag.Bool("specific", false, "report only the most specific bottlenecks of one run (requires -version and -run-id)")
		runID      = flag.String("run-id", "run1", "run id for -specific")
		limit      = flag.Int("limit", 25, "maximum results to print")
	)
	flag.Parse()
	if *storeDir == "" {
		log.Fatal("-store is required")
	}
	st, err := history.NewStore(*storeDir)
	if err != nil {
		log.Fatal(err)
	}
	for _, issue := range st.ScanIssues() {
		log.Printf("warning: skipped %s", issue)
	}

	if *list {
		names, err := st.List()
		if err != nil {
			log.Fatal(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	if *specific {
		rec, err := st.Load(*appName, *version, *runID)
		if err != nil {
			log.Fatal(err)
		}
		out := core.MostSpecificBottlenecks(rec)
		fmt.Printf("most specific bottlenecks of %s-%s/%s (%d of %d true pairs):\n",
			*appName, *version, *runID, len(out), rec.TrueCount)
		for i, nr := range out {
			if i == *limit {
				break
			}
			fmt.Printf("  value=%.3f  %s %s\n", nr.Value, nr.Hyp, nr.Focus)
		}
		return
	}

	if *persistent > 0 {
		counts, err := st.PersistentBottlenecks(*appName, *version, *persistent)
		if err != nil {
			log.Fatal(err)
		}
		type kc struct {
			key string
			n   int
		}
		var out []kc
		for k, n := range counts {
			out = append(out, kc{k, n})
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].n != out[j].n {
				return out[i].n > out[j].n
			}
			return out[i].key < out[j].key
		})
		fmt.Printf("bottlenecks true in >= %d runs of %s:\n", *persistent, *appName)
		for _, x := range out {
			fmt.Printf("  %2d runs  %s\n", x.n, x.key)
		}
		return
	}

	hits, err := st.Query(*appName, *version, history.ResultFilter{
		Hyp:           *hyp,
		FocusContains: *focus,
		State:         *state,
		MinValue:      *minValue,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d matching results", len(hits))
	if len(hits) > *limit {
		fmt.Printf(" (showing %d)", *limit)
	}
	fmt.Println()
	for i, h := range hits {
		if i == *limit {
			break
		}
		fmt.Printf("  %-10s value=%.3f [%s] %s %s\n",
			h.Version+"/"+h.RunID, h.Result.Value, h.Result.State, h.Result.Hyp, h.Result.Focus)
	}
}
