// Command pctrace runs a synthetic application under a passive trace
// recorder — no Performance Consultant, no instrumentation perturbation —
// and writes the full activity trace in the line-JSON trace format that
// pcextract's postmortem mode consumes. It models gathering data with a
// different monitoring tool.
//
// Usage:
//
//	pctrace -app poisson -version C -duration 120 -o trace.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/app"
	"repro/internal/postmortem"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pctrace: ")
	var (
		appName    = flag.String("app", "poisson", "application: poisson | ocean | tester | seismic")
		version    = flag.String("version", "C", "poisson code version: A | B | C | D")
		duration   = flag.Float64("duration", 120, "virtual seconds to trace")
		nodeOffset = flag.Int("node-offset", 1, "first machine node number")
		outFile    = flag.String("o", "", "trace output file (default stdout)")
	)
	flag.Parse()

	a, err := buildApp(*appName, *version, app.Options{NodeOffset: *nodeOffset})
	if err != nil {
		log.Fatal(err)
	}
	out := os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	s, err := a.NewSimulator(sim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	tw := postmortem.NewTraceWriter(out)
	s.AddObserver(tw)
	if err := s.RunUntil(*duration); err != nil {
		log.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "traced %s for %.1f virtual seconds: %d intervals\n",
		a.FullName(), *duration, tw.Intervals())
}

// buildApp defers to the app registry; the CLI keeps its historical
// leniency of ignoring -version for the versionless applications.
func buildApp(name, version string, opt app.Options) (*app.App, error) {
	if name != "poisson" {
		version = ""
	}
	return app.Build(name, version, opt)
}
