// Command pcbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	pcbench -exp table1|table2|table3|table4|ocean|combine|postmortem|ablation|scale|fig1|fig2|fig3|all
//	        [-trials N] [-parallel N] [-store DIR] [-wal] [-shards N]
//
// -parallel bounds the number of diagnosis sessions run concurrently
// (default: the number of CPUs). Because every session's state is
// confined to its own goroutine and the simulator is deterministic per
// seed, the rendered output is byte-identical for every -parallel value;
// -parallel 1 reproduces the fully sequential behaviour.
//
// -store persists every experiment's run records to an on-disk
// experiment store, browsable afterwards with pcquery; without it the
// experiments run against an in-memory store. The rendered output is
// identical either way: records round-trip through the same encoding.
// -wal additionally journals every store write ahead of the record
// files (the pcd durability layer); it changes nothing about the
// rendered output, only the store's crash safety. -shards N lays the
// store out as N consistent-hash shards; scatter-gather reads merge in
// canonical order, so the rendered output is byte-identical to the
// single-store (and in-memory) layouts at any shard count.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"

	"repro/internal/harness"
	"repro/internal/history"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcbench: ")
	exp := flag.String("exp", "all", "experiment to regenerate")
	trials := flag.Int("trials", 3, "repeated runs per configuration (medians reported)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "max concurrent diagnosis sessions (1 = sequential)")
	storeDir := flag.String("store", "", "directory to persist experiment run records (default: in-memory)")
	wal := flag.Bool("wal", false, "journal -store writes ahead of record files (crash safety)")
	shards := flag.Int("shards", 0, "open -store as a consistent-hash sharded layout with N shards (0 = single store, or whatever layout exists)")
	flag.Parse()

	var st history.Storage
	if *storeDir != "" {
		var err error
		st, err = history.OpenStoreAuto(*storeDir, *shards, history.DurableOptions{Create: true, WAL: *wal})
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
	} else if *shards > 0 {
		log.Fatal("-shards needs -store (an in-memory store has no shard layout)")
	}
	env := harness.NewEnv(st)

	run := func(name string, f func() (string, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		out, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(out)
	}

	run("fig1", func() (string, error) { return harness.Figure1() })
	run("fig2", func() (string, error) { return harness.Figure2() })
	run("fig3", func() (string, error) { return harness.Figure3() })
	run("table1", func() (string, error) {
		r, err := env.Table1(*trials, *parallel)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("table2", func() (string, error) {
		r, err := harness.Table2(*trials, *parallel)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("ocean", func() (string, error) {
		r, err := harness.OceanThresholds(*trials, *parallel)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("table3", func() (string, error) {
		r, err := env.Table3(*trials, *parallel)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("table4", func() (string, error) {
		r, err := env.Table4(*parallel)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("combine", func() (string, error) {
		r, err := env.CombineStudy(*parallel)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("postmortem", func() (string, error) {
		r, err := env.PostmortemStudy(*parallel)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("ablation", func() (string, error) {
		r, err := env.Ablation(*parallel)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("scale", func() (string, error) {
		r, err := env.ScaleStudy(nil, *parallel)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
}
