// Command pcbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	pcbench -exp table1|table2|table3|table4|ocean|combine|postmortem|ablation|scale|fig1|fig2|fig3|all
//	        [-trials N]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcbench: ")
	exp := flag.String("exp", "all", "experiment to regenerate")
	trials := flag.Int("trials", 3, "repeated runs per configuration (medians reported)")
	flag.Parse()

	run := func(name string, f func() (string, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		out, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(out)
	}

	run("fig1", func() (string, error) { return harness.Figure1() })
	run("fig2", func() (string, error) { return harness.Figure2() })
	run("fig3", func() (string, error) { return harness.Figure3() })
	run("table1", func() (string, error) {
		r, err := harness.Table1(*trials)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("table2", func() (string, error) {
		r, err := harness.Table2(*trials)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("ocean", func() (string, error) {
		r, err := harness.OceanThresholds(*trials)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("table3", func() (string, error) {
		r, err := harness.Table3(*trials)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("table4", func() (string, error) {
		r, err := harness.Table4()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("combine", func() (string, error) {
		r, err := harness.CombineStudy()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("postmortem", func() (string, error) {
		r, err := harness.PostmortemStudy()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("ablation", func() (string, error) {
		r, err := harness.Ablation()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	run("scale", func() (string, error) {
		r, err := harness.ScaleStudy(nil)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
}
