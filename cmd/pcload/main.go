// Command pcload is the sustained-traffic load harness: it drives a
// live pcd with the declarative scenario suites under suites/ —
// workload mix × key distribution × fault mix × WAL sync policy × store
// size, under a fixed RNG seed — and reports per-op-class latency
// quantiles, throughput, error counts, and /statsz deltas as a JSON
// artifact. Every run ends with a correctness sweep: a read-back of all
// acknowledged writes and (self-hosted) a pcfsck-clean store.
//
// Usage:
//
//	pcload [-suites DIR] [-suite NAME[,NAME...]] [-out FILE] [-pr N]
//	       [-server URL] [-dir DIR] [-shards N] [-check] [-v]
//
// By default pcload self-hosts a fresh pcd per suite over a temporary
// store, so suites control the full serving stack (-wal-sync policy,
// fault injection) and the store can be fscked afterwards. With
// -server URL it drives an existing daemon instead; verification then
// runs over the wire and the fsck pass is skipped.
//
// -check exits non-zero unless every suite passes the correctness bar
// (non-zero throughput, zero acked-write loss, fsck-clean) — the CI
// smoke mode.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcload: ")
	suitesDir := flag.String("suites", "suites", "directory holding *.toml scenario suites")
	suiteList := flag.String("suite", "", "comma-separated suite names to run (default: all in -suites)")
	out := flag.String("out", "", "write the JSON artifact to this file")
	pr := flag.Int("pr", 0, "PR number to stamp into the artifact")
	serverURL := flag.String("server", "", "drive an existing pcd at this URL instead of self-hosting")
	dir := flag.String("dir", "", "self-hosted store directory, kept afterwards (default: fresh temp dir, removed)")
	shards := flag.Int("shards", 0, "override the suites' shard count (self-hosted only)")
	check := flag.Bool("check", false, "exit non-zero unless every suite passes the correctness bar")
	verbose := flag.Bool("v", false, "log per-suite progress")
	flag.Parse()
	if flag.NArg() > 0 {
		log.Println("usage: pcload [-suites DIR] [-suite NAME,...] [-out FILE] [-server URL] [-check]")
		os.Exit(2)
	}

	paths, err := suitePaths(*suitesDir, *suiteList)
	if err != nil {
		log.Fatal(err)
	}

	opt := loadgen.Options{ServerURL: *serverURL, Dir: *dir}
	if *verbose {
		opt.Logf = log.Printf
	}
	artifact := loadgen.NewArtifact(*pr)
	failed := 0
	for _, path := range paths {
		sc, err := loadgen.LoadScenario(path)
		if err != nil {
			log.Fatal(err)
		}
		if *shards > 0 {
			sc.Shards = *shards
		}
		rep, err := loadgen.RunSuite(sc, opt)
		if err != nil {
			log.Fatal(err)
		}
		artifact.Suites = append(artifact.Suites, *rep)
		verdict := "pass"
		if err := rep.Passed(); err != nil {
			verdict = "FAIL: " + err.Error()
			failed++
		}
		fmt.Printf("%-24s %7d ops %8.1f ops/s  errors %d  unavailable %d  %s\n",
			sc.Name, rep.Ops, rep.OpsPerSec, rep.Errors, rep.Unavailable, verdict)
		for _, cr := range rep.Classes {
			fmt.Printf("  %-10s %7d ops  p50 %8.2fms  p99 %8.2fms  p999 %8.2fms\n",
				cr.Class, cr.Ops, cr.P50Ms, cr.P99Ms, cr.P999Ms)
		}
	}

	if *out != "" {
		if err := artifact.WriteFile(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d suites)\n", *out, len(artifact.Suites))
	}
	if *check && failed > 0 {
		log.Fatalf("%d of %d suites failed the correctness bar", failed, len(paths))
	}
}

// suitePaths resolves the -suite selection against the suites directory:
// an explicit comma-separated list (each name NAME or NAME.toml), or
// every *.toml in the directory, sorted by name.
func suitePaths(dir, list string) ([]string, error) {
	if list != "" {
		var paths []string
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !strings.HasSuffix(name, ".toml") {
				name += ".toml"
			}
			path := filepath.Join(dir, name)
			if _, err := os.Stat(path); err != nil {
				return nil, fmt.Errorf("suite %s: %w", name, err)
			}
			paths = append(paths, path)
		}
		if len(paths) == 0 {
			return nil, fmt.Errorf("-suite selected no suites")
		}
		return paths, nil
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.toml"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("no *.toml suites in %s", dir)
	}
	sort.Strings(matches)
	return matches, nil
}
