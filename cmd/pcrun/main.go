// Command pcrun performs one online automated performance diagnosis of a
// synthetic application, optionally guided by search directives harvested
// from earlier runs, and optionally saves the run record to a history
// store.
//
// Usage:
//
//	pcrun -app poisson -version C [-directives FILE] [-mappings FILE]
//	      [-store DIR] [-run-id ID] [-max-time SECONDS] [-shg] [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/app"
	"repro/internal/consultant"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/history"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcrun: ")

	var (
		appName    = flag.String("app", "poisson", "application: poisson | ocean | tester | seismic")
		version    = flag.String("version", "C", "poisson code version: A | B | C | D")
		dirFile    = flag.String("directives", "", "search directive file (prune/priority/threshold lines)")
		mapFile    = flag.String("mappings", "", "resource mapping file (map <from> <to> lines)")
		storeDir   = flag.String("store", "", "history store directory; when set, the run record is saved")
		runID      = flag.String("run-id", "run1", "record identifier within the store")
		maxTime    = flag.Float64("max-time", 50_000, "virtual time bound on the diagnosis (seconds)")
		nodeOffset = flag.Int("node-offset", 1, "first machine node number (models differently named nodes)")
		showSHG    = flag.Bool("shg", false, "print the final Search History Graph")
		dotFile    = flag.String("dot", "", "write the Search History Graph in Graphviz dot format to this file")
		timeline   = flag.String("timeline", "", "write the whole-run cpu/sync/io timeline as CSV to this file")
		reportFile = flag.String("report", "", "write a self-contained HTML report of the diagnosis to this file")
		extended   = flag.Bool("extended", false, "use the extended hypothesis tree (message-rate and message-volume sub-hypotheses)")
		depthFirst = flag.Bool("depth-first", false, "drill into children of recent true conclusions first")
		window     = flag.Float64("window", 0, "draw conclusions from only the most recent N seconds of data (0 = cumulative)")
		verbose    = flag.Bool("v", false, "print every bottleneck with its report time")
	)
	flag.Parse()

	a, err := buildApp(*appName, *version, app.Options{NodeOffset: *nodeOffset})
	if err != nil {
		log.Fatal(err)
	}
	cfg := harness.DefaultSessionConfig()
	cfg.MaxTime = *maxTime
	cfg.RunID = *runID
	if *extended {
		cfg.Hypotheses = consultant.ExtendedHypotheses()
	}
	if *timeline != "" || *reportFile != "" {
		cfg.TimelineBinWidth = 1.0
	}
	if *depthFirst {
		cfg.PC.Policy = consultant.DepthFirst
	}
	cfg.PC.RecencyWindow = *window
	if *dirFile != "" {
		f, err := os.Open(*dirFile)
		if err != nil {
			log.Fatal(err)
		}
		ds, err := core.ParseDirectives(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		cfg.Directives = ds
	}
	if *mapFile != "" {
		f, err := os.Open(*mapFile)
		if err != nil {
			log.Fatal(err)
		}
		maps, err := core.ParseMappings(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		cfg.Mappings = maps
	}

	res, err := harness.RunSession(a, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("application:        %s (%d processes)\n", a.FullName(), a.NProcs())
	fmt.Printf("search quiesced:    %v (virtual t=%.1fs)\n", res.Quiesced, res.EndTime)
	fmt.Printf("pairs instrumented: %d\n", res.PairsTested)
	fmt.Printf("SHG nodes:          %d\n", res.Consultant.SHG().Len())
	fmt.Printf("bottlenecks found:  %d\n", len(res.Bottlenecks))
	fmt.Printf("cost stalls:        %d\n", res.Consultant.StallEvents())
	if res.SkippedDirectives > 0 {
		fmt.Printf("skipped directives: %d (unmapped resources)\n", res.SkippedDirectives)
	}
	if *verbose {
		fmt.Println("\nbottlenecks (report order):")
		for _, b := range res.Bottlenecks {
			fmt.Printf("  t=%8.1fs  value=%.3f  %s %s\n", b.FoundAt, b.Value, b.Hyp, b.Focus)
		}
	}
	if *showSHG {
		fmt.Println("\nSearch History Graph:")
		fmt.Print(res.Consultant.SHG().Render())
	}
	if *dotFile != "" {
		if err := os.WriteFile(*dotFile, []byte(res.Consultant.SHG().DOT()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("SHG written to %s\n", *dotFile)
	}
	if *timeline != "" {
		if err := os.WriteFile(*timeline, []byte(res.Timeline.CSV()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("timeline written to %s\n", *timeline)
	}
	if *reportFile != "" {
		rep, err := report.FromSession(res, 0)
		if err != nil {
			log.Fatal(err)
		}
		html, err := rep.HTML()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*reportFile, []byte(html), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("HTML report written to %s\n", *reportFile)
	}
	if *storeDir != "" {
		// The recovering open path every other entry point uses: temp
		// sweep, journal replay and quarantine before the save, and a
		// sharded layout handled transparently.
		st, err := history.OpenStoreAuto(*storeDir, 0, history.DurableOptions{Create: true})
		if err != nil {
			log.Fatal(err)
		}
		if err := st.Save(res.Record); err != nil {
			log.Fatal(err)
		}
		if err := st.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("record saved to %s\n", st.Dir())
	}
}

// buildApp defers to the app registry; the CLI keeps its historical
// leniency of ignoring -version (which defaults to "C") for the
// versionless applications.
func buildApp(name, version string, opt app.Options) (*app.App, error) {
	if name != "poisson" {
		version = ""
	}
	return app.Build(name, version, opt)
}
