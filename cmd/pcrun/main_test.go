package main

import (
	"testing"

	"repro/internal/app"
)

func TestBuildApp(t *testing.T) {
	for _, c := range []struct {
		name, version string
		procs         int
	}{
		{"poisson", "A", 4},
		{"poisson", "D", 8},
		{"ocean", "", 4},
		{"tester", "", 4},
	} {
		a, err := buildApp(c.name, c.version, app.Options{})
		if err != nil {
			t.Errorf("buildApp(%s,%s): %v", c.name, c.version, err)
			continue
		}
		if a.NProcs() != c.procs {
			t.Errorf("%s-%s procs = %d, want %d", c.name, c.version, a.NProcs(), c.procs)
		}
	}
	if _, err := buildApp("nonesuch", "", app.Options{}); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := buildApp("poisson", "Z", app.Options{}); err == nil {
		t.Error("unknown version accepted")
	}
}
