// Command pcd is the performance-consultant diagnosis daemon: it owns
// one history store plus harvest cache and serves store queries,
// directive harvesting, and on-demand diagnosis sessions over HTTP/JSON
// (see FORMATS.md "Wire API"). pcquery and pccompare speak to it via
// -server URL instead of opening a -store directory themselves.
//
// Usage:
//
//	pcd -store DIR [-create] [-shards N] [-addr 127.0.0.1:7133] [-sessions N]
//	    [-session-timeout 0] [-drain-timeout 30s]
//	    [-breaker-threshold 3] [-breaker-cooldown 5s] [-session-retries 1]
//	    [-wal] [-wal-sync always|interval|none] [-resume-sessions]
//	    [-checkpoint-every 2500]
//	    [-ingest-queue 8] [-ingest-streams 64] [-ingest-idle-timeout 2m]
//	    [-ingest-eval-budget 16] [-ingest-harvest-sources 8]
//	    [-fault-seed N] [-fault-err-rate P] [-fault-torn-rate P]
//
// The store directory must already exist unless -create is given — a
// daemon pointed at a mistyped path should fail loudly, not serve an
// empty store. Opening an existing store runs crash recovery: the
// write-ahead journal's tail is replayed (re-applying acknowledged
// writes a crash left off the record files), orphaned temp files are
// swept, and unreadable records are quarantined (moved to quarantine/
// with a report, never deleted) before serving begins.
//
// -shards N serves a consistent-hash sharded store: records route by
// (app, version) across N full stores under <store>/shards/NN/ (each
// with its own WAL, quarantine and recovery), reads scatter-gather and
// merge in canonical order, and one failed shard degrades its keyspace
// (reads skip it, writes to it get 503) instead of taking the daemon
// down — /statsz carries per-shard gauges. The layout is detected
// automatically on later opens, so -shards is only needed at -create
// time; a mismatched count is an error, not a reshard.
//
// Durability: with -wal (the default) every store mutation is journaled
// before it touches a record file, so a SIGKILL mid-write loses nothing
// that was acknowledged; -wal-sync picks the fsync policy (always, the
// default, makes acknowledged writes survive power loss too at one
// fsync per append; interval bounds power-loss exposure to the sync
// interval — SIGKILL alone still loses nothing; none leaves flushing to
// the OS).
// Diagnose requests carrying an idempotency key are journaled too:
// after a crash the daemon re-runs the orphaned sessions
// (-resume-sessions) and serves reconnecting clients the byte-identical
// stored result. Verify a store offline with pcfsck.
//
// The daemon also accepts live metric streams (FORMATS.md "Streaming
// ingestion"): pcfeed or any ingest.Reporter opens one stream per
// running (app, version, run), ships seq-numbered sample batches that
// an incremental diagnosis session folds in as they arrive, and
// finalizes the run into the store on the end-of-stream marker — or
// after -ingest-idle-timeout of silence. -ingest-queue bounds the
// batches buffered per stream (overflow answers 429 + Retry-After),
// -ingest-streams caps concurrent streams, -ingest-eval-budget paces
// each stream's incremental search, and -ingest-harvest-sources caps
// how many stored runs steer a stream that opted into harvesting.
//
// The -fault-* flags wrap the store backend with deterministic seeded
// fault injection (errors and torn writes) — the chaos layer the
// kill-restart harness drives. Never set them in production.
//
// When the store's backend starts failing (-breaker-threshold
// consecutive failures), the daemon degrades instead of dying: reads
// keep serving from the in-memory index, writes are refused with 503 +
// Retry-After, /healthz reports "degraded", and every -breaker-cooldown
// a health check probes the backend, returning the daemon to "ok" once
// it heals — no restart needed. On SIGINT/SIGTERM the daemon drains:
// new diagnoses are refused with 503 while in-flight sessions run to
// completion (bounded by -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/history"
	"repro/internal/ingest"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcd: ")
	var (
		addr           = flag.String("addr", "127.0.0.1:7133", "listen address (host:port; port 0 picks a free port)")
		storeDir       = flag.String("store", "", "history store directory (required)")
		create         = flag.Bool("create", false, "create the store directory if it does not exist")
		shards         = flag.Int("shards", 0, "consistent-hash shard count for the store layout (0 = single store, or whatever layout exists)")
		sessions       = flag.Int("sessions", 0, "max concurrent diagnosis sessions (0 = GOMAXPROCS)")
		sessionTimeout = flag.Duration("session-timeout", 0, "per-request diagnosis timeout, queueing included (0 = none)")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight sessions")
		brkThreshold   = flag.Int("breaker-threshold", 3, "consecutive backend failures before degraded mode")
		brkCooldown    = flag.Duration("breaker-cooldown", 5*time.Second, "degraded-mode probe interval and Retry-After hint")
		sessionRetries = flag.Int("session-retries", 1, "re-runs of a diagnosis session after a transient failure")
		wal            = flag.Bool("wal", true, "journal store writes ahead of record files (crash safety)")
		walSync        = flag.String("wal-sync", "always", "WAL fsync policy: always | interval | none")
		resumeSessions = flag.Bool("resume-sessions", true, "re-run diagnosis sessions a crash orphaned")
		ckptEvery      = flag.Float64("checkpoint-every", 2500, "session checkpoint cadence in virtual seconds")
		faultSeed      = flag.Int64("fault-seed", 1, "seed for injected backend faults (testing only)")
		faultErrRate   = flag.Float64("fault-err-rate", 0, "injected backend error probability (testing only)")
		faultTornRate  = flag.Float64("fault-torn-rate", 0, "injected torn-write probability (testing only)")
		ingQueue       = flag.Int("ingest-queue", 8, "sample batches queued per ingest stream before 429 backpressure")
		ingStreams     = flag.Int("ingest-streams", 64, "max concurrently active ingest streams")
		ingIdle        = flag.Duration("ingest-idle-timeout", 2*time.Minute, "finalize an ingest stream idle this long (implicit end-of-stream)")
		ingBudget      = flag.Int("ingest-eval-budget", 16, "incremental pair evaluations per ingest sample batch")
		ingSources     = flag.Int("ingest-harvest-sources", 8, "stored runs harvested to steer one ingest stream")
	)
	flag.Parse()
	if *storeDir == "" {
		log.Fatal("-store is required")
	}
	sync, err := history.ParseSyncPolicy(*walSync)
	if err != nil {
		log.Fatal(err)
	}
	dopts := history.DurableOptions{
		Create:     *create,
		WAL:        *wal,
		WALOptions: history.WALOptions{Sync: sync},
	}
	if *faultErrRate > 0 || *faultTornRate > 0 {
		log.Printf("warning: fault injection active (seed %d, err %.3f, torn %.3f)",
			*faultSeed, *faultErrRate, *faultTornRate)
		dopts.Wrap = func(b history.Backend) history.Backend {
			return history.NewFaultBackend(b, history.FaultConfig{
				Seed:          *faultSeed,
				ErrRate:       *faultErrRate,
				TornWriteRate: *faultTornRate,
			})
		}
	}
	st, err := history.OpenStoreAuto(*storeDir, *shards, dopts)
	if err != nil {
		log.Fatal(err)
	}
	if rep := st.Recovery(); rep != nil && !rep.Empty() {
		for _, sr := range rep.Shards {
			if sr.Err != "" {
				log.Printf("recovery: shard %02d down: %s (its keyspace is absent until a probe revives it)", sr.Shard, sr.Err)
			}
		}
		for _, name := range rep.SweptTemp {
			log.Printf("recovery: swept orphaned temp file %s", name)
		}
		for _, q := range rep.Quarantined {
			log.Printf("recovery: quarantined %s (%s)", q.Name, q.Reason)
		}
		if w := rep.WAL; w != nil && !w.Empty() {
			log.Printf("recovery: wal replayed %d of %d journaled entries (torn tail: %v)",
				w.Replayed, w.Entries, w.TornTail)
			for _, c := range w.Corrupt {
				log.Printf("recovery: wal corrupt frame: %s", c)
			}
		}
		log.Printf("recovery: %d temp files swept, %d records quarantined under %s/%s",
			len(rep.SweptTemp), len(rep.Quarantined), st.Dir(), history.QuarantineDir)
	}
	for _, issue := range st.ScanIssues() {
		log.Printf("warning: skipped %s", issue)
	}

	srv := server.New(harness.NewEnv(st), server.Options{
		Sessions:         *sessions,
		SessionTimeout:   *sessionTimeout,
		BreakerThreshold: *brkThreshold,
		BreakerCooldown:  *brkCooldown,
		SessionRetries:   *sessionRetries,
		Ingest: ingest.ManagerOptions{
			QueueDepth:     *ingQueue,
			MaxStreams:     *ingStreams,
			IdleTimeout:    *ingIdle,
			EvalBudget:     *ingBudget,
			HarvestSources: *ingSources,
		},
	})
	if err := srv.EnableSessionJournal(filepath.Join(st.Dir(), server.SessionsDirName), *ckptEvery); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	// The "serving" line is the startup handshake: smoke tests and
	// scripts wait for it (and parse the actual address when -addr used
	// port 0).
	slots := *sessions
	if slots <= 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	layout := ""
	if ss, ok := st.(*history.ShardedStore); ok {
		layout = fmt.Sprintf(", %d shards", ss.Shards())
	}
	fmt.Printf("pcd: serving on http://%s (store %s%s, %d records, %d session slots)\n",
		ln.Addr(), st.Dir(), layout, st.Len(), slots)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	// Resume crash-orphaned sessions in the background: the daemon serves
	// immediately, and a client resending its idempotency key right now
	// simply waits on the same journal claim instead of racing the
	// resume.
	if *resumeSessions {
		go func() {
			n, err := srv.ResumeSessions(context.Background())
			if err != nil {
				log.Printf("session resume: %v", err)
			}
			if n > 0 {
				log.Printf("resumed %d crash-orphaned diagnosis sessions", n)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("caught %v, draining", s)
	case err := <-errc:
		log.Fatal(err)
	}

	// Drain: refuse new diagnoses, close the streaming intake (leftover
	// streams are discarded — clients resume by restarting the run), wait
	// for in-flight sessions, then stop accepting connections.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	// Close the store last: flushes and closes the write-ahead journal.
	if err := st.Close(); err != nil {
		log.Printf("store close: %v", err)
	}
	log.Print("stopped")
}
