// Command pcd is the performance-consultant diagnosis daemon: it owns
// one history store plus harvest cache and serves store queries,
// directive harvesting, and on-demand diagnosis sessions over HTTP/JSON
// (see FORMATS.md "Wire API"). pcquery and pccompare speak to it via
// -server URL instead of opening a -store directory themselves.
//
// Usage:
//
//	pcd -store DIR [-create] [-shards N] [-addr 127.0.0.1:7133] [-sessions N]
//	    [-session-timeout 0] [-drain-timeout 30s]
//	    [-breaker-threshold 3] [-breaker-cooldown 5s] [-session-retries 1]
//	    [-wal] [-wal-sync always|interval|none] [-resume-sessions]
//	    [-checkpoint-every 2500]
//	    [-ingest-queue 8] [-ingest-streams 64] [-ingest-idle-timeout 2m]
//	    [-ingest-eval-budget 16] [-ingest-harvest-sources 8]
//	    [-replicas N] [-promote] [-follow URL] [-advertise URL]
//	    [-auto-failover] [-lease-ttl 3s] [-heartbeat-every 0]
//	    [-ack-quorum 1] [-peers URL,URL]
//	    [-fault-seed N] [-fault-err-rate P] [-fault-torn-rate P]
//
// The store directory must already exist unless -create is given — a
// daemon pointed at a mistyped path should fail loudly, not serve an
// empty store. Opening an existing store runs crash recovery: the
// write-ahead journal's tail is replayed (re-applying acknowledged
// writes a crash left off the record files), orphaned temp files are
// swept, and unreadable records are quarantined (moved to quarantine/
// with a report, never deleted) before serving begins.
//
// -shards N serves a consistent-hash sharded store: records route by
// (app, version) across N full stores under <store>/shards/NN/ (each
// with its own WAL, quarantine and recovery), reads scatter-gather and
// merge in canonical order, and one failed shard degrades its keyspace
// (reads skip it, writes to it get 503) instead of taking the daemon
// down — /statsz carries per-shard gauges. The layout is detected
// automatically on later opens, so -shards is only needed at -create
// time; a mismatched count is an error, not a reshard.
//
// Durability: with -wal (the default) every store mutation is journaled
// before it touches a record file, so a SIGKILL mid-write loses nothing
// that was acknowledged; -wal-sync picks the fsync policy (always, the
// default, makes acknowledged writes survive power loss too at one
// fsync per append; interval bounds power-loss exposure to the sync
// interval — SIGKILL alone still loses nothing; none leaves flushing to
// the OS).
// Diagnose requests carrying an idempotency key are journaled too:
// after a crash the daemon re-runs the orphaned sessions
// (-resume-sessions) and serves reconnecting clients the byte-identical
// stored result. Verify a store offline with pcfsck.
//
// The daemon also accepts live metric streams (FORMATS.md "Streaming
// ingestion"): pcfeed or any ingest.Reporter opens one stream per
// running (app, version, run), ships seq-numbered sample batches that
// an incremental diagnosis session folds in as they arrive, and
// finalizes the run into the store on the end-of-stream marker — or
// after -ingest-idle-timeout of silence. -ingest-queue bounds the
// batches buffered per stream (overflow answers 429 + Retry-After),
// -ingest-streams caps concurrent streams, -ingest-eval-budget paces
// each stream's incremental search, and -ingest-harvest-sources caps
// how many stored runs steer a stream that opted into harvesting.
//
// Replication (DESIGN.md §14): -replicas N declares this daemon the
// primary of N follower daemons and arms the semi-sync write gate —
// every acknowledged write has reached a follower (or, before the first
// follower attaches, is counted as async). Followers run the same
// binary with -follow URL pointing at the primary; each pulls the
// primary's write-ahead journal per shard, folds the frames into its
// own durable store (byte-identical records), and persists its applied
// position. When a shard's backend fails on the primary, reads fail
// over to the most-caught-up follower automatically; with -promote the
// failed shard's keyspace is additionally handed to that follower for
// writes, so the whole keyspace stays writable through the fault.
// -advertise overrides the URL peers reach this node at (default: the
// actual listen address). /statsz carries a replication block on both
// roles.
//
// Automatic failover (DESIGN.md §15): with -auto-failover on every
// node, no operator is needed when the primary dies. Follower pulls
// double as heartbeats and carry the primary's -lease-ttl grant; a
// follower without contact for a full lease runs an election against
// -peers (plus the membership learned from the primary), and the
// most-caught-up visible follower — majority visibility required, ties
// broken by smallest advertise URL — bumps the journal epoch and takes
// the keyspace. Every replication and write RPC carries the epoch;
// stale-epoch traffic is refused with HTTP 409 (the typed fencing
// error), so at most one node per keyspace accepts writes. A revived
// old primary discovers the newer epoch at startup (via PEERS.json and
// -peers), demotes itself to follower, quarantines the diverged tail
// of its journal (surfaced by pcfsck, never silently dropped), and
// catches up from a snapshot. -ack-quorum Q makes the write gate wait
// for Q follower acks instead of one. The manual path — -promote on
// the primary, or POSTing /api/v1/replica/promote to a follower —
// still works as a documented operator override.
//
// The -fault-* flags wrap the store backend with deterministic seeded
// fault injection (errors and torn writes) — the chaos layer the
// kill-restart harness drives. Never set them in production.
//
// When the store's backend starts failing (-breaker-threshold
// consecutive failures), the daemon degrades instead of dying: reads
// keep serving from the in-memory index, writes are refused with 503 +
// Retry-After, /healthz reports "degraded", and every -breaker-cooldown
// a health check probes the backend, returning the daemon to "ok" once
// it heals — no restart needed. On SIGINT/SIGTERM the daemon drains:
// new diagnoses are refused with 503 while in-flight sessions run to
// completion (bounded by -drain-timeout).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/history"
	"repro/internal/ingest"
	"repro/internal/replica"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcd: ")
	var (
		addr           = flag.String("addr", "127.0.0.1:7133", "listen address (host:port; port 0 picks a free port)")
		storeDir       = flag.String("store", "", "history store directory (required)")
		create         = flag.Bool("create", false, "create the store directory if it does not exist")
		shards         = flag.Int("shards", 0, "consistent-hash shard count for the store layout (0 = single store, or whatever layout exists)")
		sessions       = flag.Int("sessions", 0, "max concurrent diagnosis sessions (0 = GOMAXPROCS)")
		sessionTimeout = flag.Duration("session-timeout", 0, "per-request diagnosis timeout, queueing included (0 = none)")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight sessions")
		brkThreshold   = flag.Int("breaker-threshold", 3, "consecutive backend failures before degraded mode")
		brkCooldown    = flag.Duration("breaker-cooldown", 5*time.Second, "degraded-mode probe interval and Retry-After hint")
		sessionRetries = flag.Int("session-retries", 1, "re-runs of a diagnosis session after a transient failure")
		wal            = flag.Bool("wal", true, "journal store writes ahead of record files (crash safety)")
		walSync        = flag.String("wal-sync", "always", "WAL fsync policy: always | interval | none")
		resumeSessions = flag.Bool("resume-sessions", true, "re-run diagnosis sessions a crash orphaned")
		ckptEvery      = flag.Float64("checkpoint-every", 2500, "session checkpoint cadence in virtual seconds")
		faultSeed      = flag.Int64("fault-seed", 1, "seed for injected backend faults (testing only)")
		faultErrRate   = flag.Float64("fault-err-rate", 0, "injected backend error probability (testing only)")
		faultTornRate  = flag.Float64("fault-torn-rate", 0, "injected torn-write probability (testing only)")
		ingQueue       = flag.Int("ingest-queue", 8, "sample batches queued per ingest stream before 429 backpressure")
		ingStreams     = flag.Int("ingest-streams", 64, "max concurrently active ingest streams")
		ingIdle        = flag.Duration("ingest-idle-timeout", 2*time.Minute, "finalize an ingest stream idle this long (implicit end-of-stream)")
		ingBudget      = flag.Int("ingest-eval-budget", 16, "incremental pair evaluations per ingest sample batch")
		ingSources     = flag.Int("ingest-harvest-sources", 8, "stored runs harvested to steer one ingest stream")
		replicas       = flag.Int("replicas", 0, "expected follower count; arms WAL shipping and the semi-sync write gate (primary role)")
		promote        = flag.Bool("promote", false, "promote the most-caught-up follower when a shard fails, keeping its keyspace writable")
		follow         = flag.String("follow", "", "primary base URL to replicate from (follower role)")
		advertise      = flag.String("advertise", "", "URL peers reach this node at (default http://<listen addr>)")
		autoFailover   = flag.Bool("auto-failover", false, "arm the heartbeat failure detector: followers self-promote when the primary's lease lapses, and a superseded primary demotes itself at startup")
		leaseTTL       = flag.Duration("lease-ttl", 3*time.Second, "liveness lease granted with every pull; a follower without contact this long starts an election (the primary's value is the cluster-wide truth)")
		heartbeatEvery = flag.Duration("heartbeat-every", 0, "failure-detector tick and pull long-poll cap (0 = lease-ttl/6)")
		ackQuorum      = flag.Int("ack-quorum", 1, "follower acks that release a gated write, clamped to [1, replicas]")
		peersFlag      = flag.String("peers", "", "comma-separated advertise URLs of the other replicas (the failover electorate)")
	)
	flag.Parse()
	if *storeDir == "" {
		log.Fatal("-store is required")
	}
	if *follow != "" && *replicas > 0 {
		log.Fatal("-follow and -replicas are mutually exclusive (a node is primary or follower)")
	}
	if (*follow != "" || *replicas > 0) && !*wal {
		log.Fatal("replication ships the write-ahead journal; -wal must stay on")
	}
	if *autoFailover && *follow == "" && *replicas == 0 {
		log.Fatal("-auto-failover needs a replication role (-replicas or -follow)")
	}
	sync, err := history.ParseSyncPolicy(*walSync)
	if err != nil {
		log.Fatal(err)
	}
	dopts := history.DurableOptions{
		Create:     *create,
		WAL:        *wal,
		WALOptions: history.WALOptions{Sync: sync},
		Replicas:   *replicas,
	}
	// The startup rejoin handshake (DESIGN.md §15): a primary revived
	// under -auto-failover interrogates its last known followers (and
	// -peers) BEFORE serving. If any claims a newer epoch, a promotion
	// happened while this node was down — it is a zombie, and it demotes
	// itself into a follower of the winner instead of splitting the brain.
	followURL := *follow
	rejoined := false
	if *autoFailover && *replicas > 0 {
		if winner, theirs, ours := supersededBy(*storeDir, splitURLs(*peersFlag), *advertise); winner != "" {
			log.Printf("rejoin: %s owns epoch %d, ours is %d; demoting to follower", winner, theirs, ours)
			followURL = winner
			rejoined = true
		}
	}
	shardCount := *shards
	peerReplicas := 0
	if followURL != "" {
		// The layout handshake: a follower mirrors the primary's shard
		// count, so its store can fold each shard's journal one to one.
		info, err := replicaInfo(followURL, 30*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		if info.Role != "primary" {
			log.Fatalf("-follow %s: node is %q, not a primary", followURL, info.Role)
		}
		if shardCount == 0 && info.Shards > 1 {
			shardCount = info.Shards
		}
		peerReplicas = info.Replicas
	}
	if *faultErrRate > 0 || *faultTornRate > 0 {
		log.Printf("warning: fault injection active (seed %d, err %.3f, torn %.3f)",
			*faultSeed, *faultErrRate, *faultTornRate)
		dopts.Wrap = func(b history.Backend) history.Backend {
			return history.NewFaultBackend(b, history.FaultConfig{
				Seed:          *faultSeed,
				ErrRate:       *faultErrRate,
				TornWriteRate: *faultTornRate,
			})
		}
	}
	st, err := history.OpenStoreAuto(*storeDir, shardCount, dopts)
	if err != nil {
		log.Fatal(err)
	}
	if rep := st.Recovery(); rep != nil && !rep.Empty() {
		for _, sr := range rep.Shards {
			if sr.Err != "" {
				log.Printf("recovery: shard %02d down: %s (its keyspace is absent until a probe revives it)", sr.Shard, sr.Err)
			}
		}
		for _, name := range rep.SweptTemp {
			log.Printf("recovery: swept orphaned temp file %s", name)
		}
		for _, q := range rep.Quarantined {
			log.Printf("recovery: quarantined %s (%s)", q.Name, q.Reason)
		}
		if w := rep.WAL; w != nil && !w.Empty() {
			log.Printf("recovery: wal replayed %d of %d journaled entries (torn tail: %v)",
				w.Replayed, w.Entries, w.TornTail)
			for _, c := range w.Corrupt {
				log.Printf("recovery: wal corrupt frame: %s", c)
			}
		}
		log.Printf("recovery: %d temp files swept, %d records quarantined under %s/%s",
			len(rep.SweptTemp), len(rep.Quarantined), st.Dir(), history.QuarantineDir)
	}
	for _, issue := range st.ScanIssues() {
		log.Printf("warning: skipped %s", issue)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}

	// Replication roles. A primary hooks every shard journal's append
	// stream and gates acknowledged writes on follower progress; a
	// follower pulls those streams into its own store and refuses public
	// writes for shards it has not been promoted on. Under -auto-failover
	// a follower additionally carries a dormant standby primary — the
	// moment the failure detector wins its election, the standby starts
	// serving this node's journal to the rest of the cluster.
	self := *advertise
	if self == "" {
		self = "http://" + ln.Addr().String()
	}
	var (
		node      *replica.Node
		fol       *replica.Follower
		det       *replica.Detector
		serveSt   = st
		writeGate func(app, version string) error
	)
	switch {
	case *replicas > 0 && !rejoined:
		prim, err := replica.NewPrimary(st, *replicas)
		if err != nil {
			log.Fatal(err)
		}
		prim.SetQuorum(*ackQuorum)
		prim.SetLeaseTTL(*leaseTTL)
		prim.SetPeersPath(replica.PeersFilePath(st.Dir()))
		if ss, ok := st.(*history.ShardedStore); ok {
			ss.SetFailover(replica.NewFailover(prim), *promote || *autoFailover)
		}
		serveSt = replica.Gate(st, prim)
		node = &replica.Node{Primary: prim, Advertise: self}
		if *autoFailover {
			dcfg := replica.DetectorConfig{
				Advertise: self,
				LeaseTTL:  *leaseTTL,
				Every:     *heartbeatEvery,
				Peers:     splitURLs(*peersFlag),
			}
			if ss, ok := st.(*history.ShardedStore); ok {
				dcfg.ShardHealth = ss.ShardStats
				dcfg.PromoteShard = ss.FailoverPromote
			}
			det = replica.NewDetector(prim, dcfg)
			det.Start()
		}
	case followURL != "":
		fol, err = replica.NewFollower(followURL, self, st)
		if err != nil {
			log.Fatal(err)
		}
		if rejoined {
			if err := fol.Rejoin(followURL); err != nil {
				log.Fatal(err)
			}
		}
		node = &replica.Node{Follower: fol, Advertise: self}
		writeGate = fol.Writable
		if *autoFailover {
			standbyN := peerReplicas
			if standbyN < 1 {
				standbyN = 1
			}
			standby, err := replica.NewPrimary(st, standbyN)
			if err != nil {
				log.Fatal(err)
			}
			standby.SetQuorum(*ackQuorum)
			standby.SetLeaseTTL(*leaseTTL)
			standby.SetPeersPath(replica.PeersFilePath(st.Dir()))
			if ss, ok := st.(*history.ShardedStore); ok {
				ss.SetFailover(replica.NewFailover(standby), true)
			}
			// The gate is inert until promotion: public writes are refused
			// by fol.Writable first, and the standby degrades to async
			// until its own first follower attaches.
			serveSt = replica.Gate(st, standby)
			node.Primary = standby
			det = replica.NewDetector(standby, replica.DetectorConfig{
				Advertise: self,
				LeaseTTL:  *leaseTTL,
				Every:     *heartbeatEvery,
				Peers:     splitURLs(*peersFlag),
			})
			fol.SetAutoFailover(replica.AutoConfig{
				LeaseTTL:       *leaseTTL,
				HeartbeatEvery: *heartbeatEvery,
				Peers:          splitURLs(*peersFlag),
				Replicas:       standbyN,
				OnPromote: func(epoch uint64) {
					// Flip the standby to the won generation and start
					// fencing rival epochs — this node is the primary now.
					standby.SetEpochs(epoch)
					det.Start()
					log.Printf("failover: self-promoted under epoch %d", epoch)
				},
			})
		}
		fol.Start()
	}

	srv := server.New(harness.NewEnv(serveSt), server.Options{
		Sessions:         *sessions,
		SessionTimeout:   *sessionTimeout,
		BreakerThreshold: *brkThreshold,
		BreakerCooldown:  *brkCooldown,
		SessionRetries:   *sessionRetries,
		Ingest: ingest.ManagerOptions{
			QueueDepth:     *ingQueue,
			MaxStreams:     *ingStreams,
			IdleTimeout:    *ingIdle,
			EvalBudget:     *ingBudget,
			HarvestSources: *ingSources,
		},
		Replication: node,
		WriteGate:   writeGate,
	})
	if err := srv.EnableSessionJournal(filepath.Join(st.Dir(), server.SessionsDirName), *ckptEvery); err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	// The "serving" line is the startup handshake: smoke tests and
	// scripts wait for it (and parse the actual address when -addr used
	// port 0).
	slots := *sessions
	if slots <= 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	layout := ""
	if ss, ok := st.(*history.ShardedStore); ok {
		layout = fmt.Sprintf(", %d shards", ss.Shards())
	}
	role := ""
	switch {
	case *replicas > 0 && !rejoined:
		role = fmt.Sprintf(", primary of %d replicas", *replicas)
	case fol != nil:
		role = ", follower of " + followURL
	}
	if *autoFailover {
		role += ", auto-failover"
	}
	fmt.Printf("pcd: serving on http://%s (store %s%s%s, %d records, %d session slots)\n",
		ln.Addr(), st.Dir(), layout, role, st.Len(), slots)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	// Resume crash-orphaned sessions in the background: the daemon serves
	// immediately, and a client resending its idempotency key right now
	// simply waits on the same journal claim instead of racing the
	// resume.
	if *resumeSessions {
		go func() {
			n, err := srv.ResumeSessions(context.Background())
			if err != nil {
				log.Printf("session resume: %v", err)
			}
			if n > 0 {
				log.Printf("resumed %d crash-orphaned diagnosis sessions", n)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("caught %v, draining", s)
	case err := <-errc:
		log.Fatal(err)
	}

	// Drain: refuse new diagnoses, close the streaming intake (leftover
	// streams are discarded — clients resume by restarting the run), wait
	// for in-flight sessions, then stop accepting connections.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	if det != nil {
		det.Stop()
	}
	if fol != nil {
		fol.Stop()
	}
	// Final durability barrier: force the journal to disk before exiting,
	// so an interval/none sync policy cannot leave the tail of a clean
	// drain exposed to power loss. Close then flushes whatever remains.
	if err := st.SyncWAL(); err != nil {
		log.Printf("final wal sync: %v", err)
	} else {
		log.Print("final wal sync: journal flushed")
	}
	// Close the store last: flushes and closes the write-ahead journal.
	if err := st.Close(); err != nil {
		log.Printf("store close: %v", err)
	}
	log.Print("stopped")
}

// splitURLs parses a comma-separated -peers list.
func splitURLs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, strings.TrimRight(p, "/"))
		}
	}
	return out
}

// maxDiskEpoch reads the store's journal epoch(s) straight from disk —
// before the store is opened, so before StartWAL bumps the generation.
// A sharded layout reports the max across shards; a missing journal
// reads as zero.
func maxDiskEpoch(storeDir string) uint64 {
	shardsDir := filepath.Join(storeDir, history.ShardsDirName)
	if des, err := os.ReadDir(shardsDir); err == nil {
		var max uint64
		for _, de := range des {
			if !de.IsDir() {
				continue
			}
			if e, err := history.JournalEpoch(filepath.Join(shardsDir, de.Name())); err == nil && e > max {
				max = e
			}
		}
		return max
	}
	e, _ := history.JournalEpoch(storeDir)
	return e
}

// supersededBy probes the persisted follower registry (PEERS.json) plus
// the -peers flag for a node claiming a strictly newer epoch than this
// store's on-disk journal generation. A hit means a promotion happened
// while this primary was down: it returns the winner's URL and the two
// epochs, and the caller demotes instead of serving writes.
func supersededBy(storeDir string, peers []string, self string) (winner string, theirs, ours uint64) {
	ours = maxDiskEpoch(storeDir)
	seen := make(map[string]bool)
	for _, peer := range append(replica.LoadPeers(replica.PeersFilePath(storeDir)), peers...) {
		if peer == "" || peer == self || seen[peer] {
			continue
		}
		seen[peer] = true
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		info, err := replica.FetchInfo(ctx, http.DefaultClient, peer)
		cancel()
		if err != nil {
			continue
		}
		if (info.Role == "primary" || info.Promoted) && info.Epoch > ours && info.Epoch > theirs {
			winner, theirs = peer, info.Epoch
		}
	}
	return winner, theirs, ours
}

// replicaInfo fetches the primary's layout handshake, retrying while
// the primary is still coming up (a follower is typically started
// seconds after — or concurrently with — its primary).
func replicaInfo(base string, patience time.Duration) (*replica.InfoResponse, error) {
	deadline := time.Now().Add(patience)
	for {
		info, err := fetchReplicaInfo(base)
		if err == nil {
			return info, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("primary %s unreachable: %w", base, err)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

func fetchReplicaInfo(base string) (*replica.InfoResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/v1/replica/info", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s/api/v1/replica/info: %s", base, resp.Status)
	}
	var info replica.InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, err
	}
	return &info, nil
}
