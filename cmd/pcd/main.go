// Command pcd is the performance-consultant diagnosis daemon: it owns
// one history store plus harvest cache and serves store queries,
// directive harvesting, and on-demand diagnosis sessions over HTTP/JSON
// (see FORMATS.md "Wire API"). pcquery and pccompare speak to it via
// -server URL instead of opening a -store directory themselves.
//
// Usage:
//
//	pcd -store DIR [-create] [-addr 127.0.0.1:7133] [-sessions N]
//	    [-session-timeout 0] [-drain-timeout 30s]
//	    [-breaker-threshold 3] [-breaker-cooldown 5s] [-session-retries 1]
//
// The store directory must already exist unless -create is given — a
// daemon pointed at a mistyped path should fail loudly, not serve an
// empty store. Opening an existing store runs crash recovery: orphaned
// temp files are swept and unreadable records are quarantined (moved to
// quarantine/ with a report, never deleted) before serving begins.
//
// When the store's backend starts failing (-breaker-threshold
// consecutive failures), the daemon degrades instead of dying: reads
// keep serving from the in-memory index, writes are refused with 503 +
// Retry-After, /healthz reports "degraded", and every -breaker-cooldown
// a health check probes the backend, returning the daemon to "ok" once
// it heals — no restart needed. On SIGINT/SIGTERM the daemon drains:
// new diagnoses are refused with 503 while in-flight sessions run to
// completion (bounded by -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/history"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcd: ")
	var (
		addr           = flag.String("addr", "127.0.0.1:7133", "listen address (host:port; port 0 picks a free port)")
		storeDir       = flag.String("store", "", "history store directory (required)")
		create         = flag.Bool("create", false, "create the store directory if it does not exist")
		sessions       = flag.Int("sessions", 0, "max concurrent diagnosis sessions (0 = GOMAXPROCS)")
		sessionTimeout = flag.Duration("session-timeout", 0, "per-request diagnosis timeout, queueing included (0 = none)")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight sessions")
		brkThreshold   = flag.Int("breaker-threshold", 3, "consecutive backend failures before degraded mode")
		brkCooldown    = flag.Duration("breaker-cooldown", 5*time.Second, "degraded-mode probe interval and Retry-After hint")
		sessionRetries = flag.Int("session-retries", 1, "re-runs of a diagnosis session after a transient failure")
	)
	flag.Parse()
	if *storeDir == "" {
		log.Fatal("-store is required")
	}
	open := history.OpenStore
	if *create {
		open = history.NewStore
	}
	st, err := open(*storeDir)
	if err != nil {
		log.Fatal(err)
	}
	if rep := st.Recovery(); rep != nil && !rep.Empty() {
		for _, name := range rep.SweptTemp {
			log.Printf("recovery: swept orphaned temp file %s", name)
		}
		for _, q := range rep.Quarantined {
			log.Printf("recovery: quarantined %s (%s)", q.Name, q.Reason)
		}
		log.Printf("recovery: %d temp files swept, %d records quarantined under %s/%s",
			len(rep.SweptTemp), len(rep.Quarantined), st.Dir(), history.QuarantineDir)
	}
	for _, issue := range st.ScanIssues() {
		log.Printf("warning: skipped %s", issue)
	}

	srv := server.New(harness.NewEnv(st), server.Options{
		Sessions:         *sessions,
		SessionTimeout:   *sessionTimeout,
		BreakerThreshold: *brkThreshold,
		BreakerCooldown:  *brkCooldown,
		SessionRetries:   *sessionRetries,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	// The "serving" line is the startup handshake: smoke tests and
	// scripts wait for it (and parse the actual address when -addr used
	// port 0).
	slots := *sessions
	if slots <= 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("pcd: serving on http://%s (store %s, %d records, %d session slots)\n",
		ln.Addr(), st.Dir(), st.Len(), slots)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("caught %v, draining", s)
	case err := <-errc:
		log.Fatal(err)
	}

	// Drain: refuse new diagnoses, wait for in-flight sessions, then
	// stop accepting connections.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	log.Print("stopped")
}
