// Command pcfeed drives live sample streams into a pcd: it builds N
// concurrent simulated applications of the workload archetypes with
// known bottleneck signatures (mw, pipeline), attaches an
// ingest.Reporter to each, and ships their activity intervals to the
// daemon's streaming intake in waves — every stream in a wave runs
// concurrently, and the next wave starts only when the previous one has
// finalized, so harvesting streams see the earlier waves' records in
// the store. It is the feeding half of the paper's online loop: pcd
// diagnoses the streams incrementally as the samples land, and pcquery
// reads the finalized records back.
//
// Usage:
//
//	pcfeed [-server URL | -store DIR] [-apps mw,pipeline] [-streams 8]
//	       [-waves 3] [-seed 1] [-harvest] [-compare] [-batch 64]
//	       [-max-time 20] [-eval-budget 24] [-out FILE] [-pr N]
//	       [-check] [-v]
//
// By default pcfeed self-hosts a fresh pcd over -store DIR (a
// temporary directory, removed afterwards, when -store is not given),
// so the run leaves a store that pcfsck can grade. With -server URL it
// feeds an existing daemon instead.
//
// Every stream registers its archetype's known bottleneck signature as
// a watch, so the daemon reports steps-to-signature: the refinement
// step count at which every watched (hypothesis : focus) pair had
// concluded true. -harvest makes streams request historical directives;
// -compare runs the whole schedule twice over fresh stores — harvest
// off, then on — and reports the steps-to-signature reduction in later
// waves (the online-value number BENCH_PR8.json records). After the
// waves, pcfeed sweeps every finalized run back over the wire and
// checks the stored true set matches what the stream concluded.
//
// -check exits non-zero unless every stream finalized, the read-back
// sweep is clean, and (-compare) harvesting reduced mean
// steps-to-signature.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/app"
	"repro/internal/client"
	"repro/internal/harness"
	"repro/internal/history"
	"repro/internal/ingest"
	"repro/internal/server"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcfeed: ")
	var (
		serverURL = flag.String("server", "", "feed an existing pcd at this URL instead of self-hosting")
		storeDir  = flag.String("store", "", "self-hosted store directory, kept afterwards (default: fresh temp dir, removed)")
		shards    = flag.Int("shards", 0, "shard count for a created self-hosted store")
		appsFlag  = flag.String("apps", "mw,pipeline", "comma-separated workload archetypes to stream (must have known signatures)")
		streams   = flag.Int("streams", 8, "concurrent streams per wave")
		waves     = flag.Int("waves", 3, "waves of streams (each waits for the previous)")
		seed      = flag.Int64("seed", 1, "base RNG seed; stream i of wave w simulates with seed+1009*w+i")
		harvest   = flag.Bool("harvest", false, "streams request historically harvested directives")
		compare   = flag.Bool("compare", false, "run twice over fresh stores (harvest off, then on) and report the reduction; self-hosted only")
		batch     = flag.Int("batch", 64, "samples per shipped batch")
		maxTime   = flag.Float64("max-time", 20, "virtual seconds each simulated run executes")
		budget    = flag.Int("eval-budget", 24, "self-hosted daemon's incremental evaluations per batch")
		out       = flag.String("out", "", "write the JSON artifact to this file")
		pr        = flag.Int("pr", 0, "PR number to stamp into the artifact")
		check     = flag.Bool("check", false, "exit non-zero unless every stream finalized, read back clean, and (-compare) harvesting won")
		verbose   = flag.Bool("v", false, "log per-stream progress")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Println("usage: pcfeed [-server URL | -store DIR] [-apps LIST] [-streams N] [-waves N] [-harvest] [-compare] [-out FILE]")
		os.Exit(2)
	}
	if *compare && *serverURL != "" {
		log.Fatal("-compare needs fresh stores per pass; it cannot run against an external -server")
	}

	apps := strings.Split(*appsFlag, ",")
	for _, name := range apps {
		if _, err := app.KnownBottlenecks(name, app.Options{}); err != nil {
			log.Fatal(err)
		}
	}

	cfg := feedConfig{
		apps: apps, streams: *streams, waves: *waves, seed: *seed,
		batch: *batch, maxTime: *maxTime, budget: *budget,
		shards: *shards, verbose: *verbose,
	}

	art := &artifact{
		PR: *pr, GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		Apps: apps, Streams: *streams, Waves: *waves, Seed: *seed,
		MaxTime: *maxTime,
	}
	ok := true
	switch {
	case *compare:
		off, err := runPass(cfg, "", *storeDir, false, "off")
		if err != nil {
			log.Fatal(err)
		}
		on, err := runPass(cfg, "", *storeDir, true, "on")
		if err != nil {
			log.Fatal(err)
		}
		art.Passes = []passReport{*off, *on}
		if off.LaterMeanWatchSteps > 0 {
			art.WatchStepsReductionPct = 100 * (off.LaterMeanWatchSteps - on.LaterMeanWatchSteps) / off.LaterMeanWatchSteps
		}
		fmt.Printf("harvest off: later-wave mean steps-to-signature %.1f\n", off.LaterMeanWatchSteps)
		fmt.Printf("harvest on:  later-wave mean steps-to-signature %.1f  (%.1f%% fewer)\n",
			on.LaterMeanWatchSteps, art.WatchStepsReductionPct)
		ok = passOK(off) && passOK(on) && on.LaterMeanWatchSteps < off.LaterMeanWatchSteps
	default:
		p, err := runPass(cfg, *serverURL, *storeDir, *harvest, "run")
		if err != nil {
			log.Fatal(err)
		}
		art.Passes = []passReport{*p}
		ok = passOK(p)
	}
	for _, p := range art.Passes {
		for _, wr := range p.Waves {
			fmt.Printf("harvest=%-5v wave %d: %d streams, %d errors, mean steps %.1f, mean steps-to-signature %.1f, mean directives %.1f\n",
				p.Harvest, wr.Wave, wr.Streams, wr.Errors, wr.MeanSteps, wr.MeanWatchSteps, wr.MeanDirectives)
		}
	}

	if *out != "" {
		if err := art.WriteFile(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *check && !ok {
		log.Fatal("correctness bar not met")
	}
}

type feedConfig struct {
	apps    []string
	streams int
	waves   int
	seed    int64
	batch   int
	maxTime float64
	budget  int
	shards  int
	verbose bool
}

// streamResult is one stream's outcome.
type streamResult struct {
	app   string
	runID string
	resp  *ingest.EndResponse
	err   error
}

// waveReport summarizes one wave of a pass.
type waveReport struct {
	Wave    int `json:"wave"`
	Streams int `json:"streams"`
	Errors  int `json:"errors,omitempty"`
	// SignatureHits counts streams whose watched signature fully
	// concluded true before end of stream.
	SignatureHits int `json:"signature_hits"`
	// MeanSteps is the mean total refinement steps per stream;
	// MeanWatchSteps the mean step count at which the known bottleneck
	// signature had concluded (over streams that reached it).
	MeanSteps      float64 `json:"mean_steps"`
	MeanWatchSteps float64 `json:"mean_watch_steps"`
	MeanDirectives float64 `json:"mean_directives"`
}

// passReport is one full schedule (all waves) under one harvest
// setting.
type passReport struct {
	Harvest bool         `json:"harvest"`
	Waves   []waveReport `json:"waves"`
	// LaterMeanWatchSteps averages mean_watch_steps over waves after the
	// first — the streams for which history existed to harvest.
	LaterMeanWatchSteps float64 `json:"later_mean_watch_steps"`
	ReadBackErrors      int     `json:"read_back_errors"`
}

type artifact struct {
	PR      int          `json:"pr,omitempty"`
	GoOS    string       `json:"goos"`
	GoArch  string       `json:"goarch"`
	Apps    []string     `json:"apps"`
	Streams int          `json:"streams"`
	Waves   int          `json:"waves"`
	Seed    int64        `json:"seed"`
	MaxTime float64      `json:"max_time"`
	Passes  []passReport `json:"passes"`
	// WatchStepsReductionPct is the -compare headline: how much
	// harvesting cut later-wave mean steps-to-signature.
	WatchStepsReductionPct float64 `json:"watch_steps_reduction_pct,omitempty"`
}

func (a *artifact) WriteFile(path string) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func passOK(p *passReport) bool {
	if p.ReadBackErrors > 0 {
		return false
	}
	for _, wr := range p.Waves {
		if wr.Errors > 0 || wr.SignatureHits == 0 {
			return false
		}
	}
	return true
}

// runPass executes the full wave schedule once. With serverURL empty it
// self-hosts a daemon over storeDir (or a temp dir); -compare calls it
// twice, each time over a fresh store.
func runPass(cfg feedConfig, serverURL, storeDir string, harvestOn bool, label string) (*passReport, error) {
	cl := client.NewResilient(serverURL, 8)
	var shutdown func() error
	if serverURL == "" {
		dir := storeDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "pcfeed-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		} else if label != "run" {
			// -compare passes each get their own store under -store.
			dir = dir + "-" + label
		}
		url, stop, err := selfHost(dir, cfg)
		if err != nil {
			return nil, err
		}
		shutdown = stop
		cl = client.NewResilient(url, 8)
	}

	rep := &passReport{Harvest: harvestOn}
	var results []streamResult
	for w := 0; w < cfg.waves; w++ {
		wave := feedWave(cl, cfg, w, harvestOn, label)
		results = append(results, wave...)
		rep.Waves = append(rep.Waves, summarize(w, wave))
	}
	rep.ReadBackErrors = readBack(cl, results, cfg.verbose)

	var sum float64
	var n int
	for _, wr := range rep.Waves[min(1, len(rep.Waves)-1):] {
		if wr.MeanWatchSteps > 0 {
			sum += wr.MeanWatchSteps
			n++
		}
	}
	if n > 0 {
		rep.LaterMeanWatchSteps = sum / float64(n)
	}

	if shutdown != nil {
		if err := shutdown(); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// selfHost opens (creating) a store under dir and serves a pcd over
// loopback, returning its URL and a shutdown func.
func selfHost(dir string, cfg feedConfig) (string, func() error, error) {
	st, err := history.OpenStoreAuto(dir, cfg.shards, history.DurableOptions{Create: true, WAL: true})
	if err != nil {
		return "", nil, err
	}
	srv := server.New(harness.NewEnv(st), server.Options{
		Ingest: ingest.ManagerOptions{EvalBudget: cfg.budget},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		st.Close()
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	stop := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			return err
		}
		return st.Close()
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// feedWave runs one wave: cfg.streams concurrent simulated runs, each
// streamed through its own Reporter, all finalized before return.
func feedWave(cl *client.Client, cfg feedConfig, wave int, harvestOn bool, label string) []streamResult {
	results := make([]streamResult, cfg.streams)
	var wg sync.WaitGroup
	for i := 0; i < cfg.streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := cfg.apps[i%len(cfg.apps)]
			runID := fmt.Sprintf("%s-w%02d-%03d", label, wave, i)
			resp, err := feedStream(cl, cfg, name, runID, cfg.seed+1009*int64(wave)+int64(i), harvestOn)
			results[i] = streamResult{app: name, runID: runID, resp: resp, err: err}
			if cfg.verbose {
				if err != nil {
					log.Printf("%s %s: %v", name, runID, err)
				} else {
					log.Printf("%s %s: %d samples, %d steps, signature at %d, %d directives",
						name, runID, resp.Samples, resp.Steps, resp.WatchSteps, resp.Directives)
				}
			}
		}(i)
	}
	wg.Wait()
	return results
}

// feedStream simulates one run of the named archetype and streams it.
func feedStream(cl *client.Client, cfg feedConfig, name, runID string, seed int64, harvestOn bool) (*ingest.EndResponse, error) {
	a, err := app.Build(name, "", app.Options{})
	if err != nil {
		return nil, err
	}
	s, err := a.NewSimulator(sim.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	sig, err := app.KnownBottlenecks(name, app.Options{})
	if err != nil {
		return nil, err
	}
	watch := make([]ingest.Watch, len(sig))
	for i, b := range sig {
		watch[i] = ingest.Watch{Hyp: b.Hyp, Path: b.Path}
	}
	rep := ingest.NewReporter(context.Background(), cl, name, "", runID, ingest.ReporterOptions{
		BatchSize: cfg.batch,
		Harvest:   harvestOn,
		Watch:     watch,
	})
	if _, err := rep.Start(); err != nil {
		return nil, err
	}
	s.AddObserver(rep)
	if err := s.Run(cfg.maxTime); err != nil {
		rep.Discard()
		return nil, err
	}
	return rep.Finish(cfg.maxTime)
}

// summarize folds one wave's stream results into its report row.
func summarize(wave int, results []streamResult) waveReport {
	wr := waveReport{Wave: wave, Streams: len(results)}
	var steps, watch, dirs float64
	var watched int
	for _, r := range results {
		if r.err != nil {
			wr.Errors++
			continue
		}
		steps += float64(r.resp.Steps)
		dirs += float64(r.resp.Directives)
		if r.resp.WatchSteps > 0 {
			wr.SignatureHits++
			watch += float64(r.resp.WatchSteps)
			watched++
		}
	}
	if n := len(results) - wr.Errors; n > 0 {
		wr.MeanSteps = steps / float64(n)
		wr.MeanDirectives = dirs / float64(n)
	}
	if watched > 0 {
		wr.MeanWatchSteps = watch / float64(watched)
	}
	return wr
}

// readBack sweeps every finalized run over the wire and checks the
// stored record's true set matches the stream's reported bottlenecks.
func readBack(cl *client.Client, results []streamResult, verbose bool) int {
	ctx := context.Background()
	bad := 0
	for _, r := range results {
		if r.err != nil || r.resp == nil || r.resp.Saved == "" {
			continue
		}
		rec, err := cl.GetRun(ctx, r.app, ":"+r.runID)
		if err != nil {
			log.Printf("read-back %s %s: %v", r.app, r.runID, err)
			bad++
			continue
		}
		var trues []string
		for _, nr := range rec.Results {
			if nr.State == "true" {
				trues = append(trues, nr.Hyp+" "+nr.Focus)
			}
		}
		sort.Strings(trues)
		if !equalStrings(trues, r.resp.Bottlenecks) {
			log.Printf("read-back %s %s: stored true set %v != streamed %v", r.app, r.runID, trues, r.resp.Bottlenecks)
			bad++
		} else if verbose {
			log.Printf("read-back %s %s: ok (%d bottlenecks)", r.app, r.runID, len(trues))
		}
	}
	return bad
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
