// Command pccompare quantitatively compares the diagnoses of two stored
// executions: which bottlenecks are common (and how their severity
// shifted), which are unique to one run, and which conclusions flipped —
// the multi-execution analysis the paper's directive harvesting builds on.
//
// Usage:
//
//	pccompare -store DIR -app poisson \
//	          -a VERSION:RUNID -b VERSION:RUNID [-eps 0.02]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/history"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pccompare: ")
	var (
		storeDir = flag.String("store", "", "history store directory (required)")
		appName  = flag.String("app", "poisson", "application name")
		aRef     = flag.String("a", "", "first run as VERSION:RUNID (required)")
		bRef     = flag.String("b", "", "second run as VERSION:RUNID (required)")
		eps      = flag.Float64("eps", 0.02, "minimum value shift to call a bottleneck improved/worsened")
	)
	flag.Parse()
	if *storeDir == "" || *aRef == "" || *bRef == "" {
		log.Fatal("-store, -a and -b are required")
	}
	st, err := history.NewStore(*storeDir)
	if err != nil {
		log.Fatal(err)
	}
	load := func(ref string) *history.RunRecord {
		parts := strings.SplitN(ref, ":", 2)
		if len(parts) != 2 {
			log.Fatalf("bad run reference %q (want VERSION:RUNID)", ref)
		}
		rec, err := st.Load(*appName, parts[0], parts[1])
		if err != nil {
			log.Fatal(err)
		}
		return rec
	}
	a, b := load(*aRef), load(*bRef)
	diff, err := core.CompareRuns(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(diff.Render())
	if imp := diff.Improved(*eps); len(imp) > 0 {
		fmt.Printf("\nimproved by more than %.0f%% of execution time (%d):\n", *eps*100, len(imp))
		for _, p := range imp {
			fmt.Printf("  %+0.3f  %s %s\n", p.Delta(), p.Hyp, p.Focus)
		}
	}
	if w := diff.Worsened(*eps); len(w) > 0 {
		fmt.Printf("\nworsened by more than %.0f%% of execution time (%d):\n", *eps*100, len(w))
		for _, p := range w {
			fmt.Printf("  %+0.3f  %s %s\n", p.Delta(), p.Hyp, p.Focus)
		}
	}
}
