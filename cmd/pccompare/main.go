// Command pccompare quantitatively compares the diagnoses of two stored
// executions: which bottlenecks are common (and how their severity
// shifted), which are unique to one run, and which conclusions flipped —
// the multi-execution analysis the paper's directive harvesting builds on.
// It reads a store directory directly, or — with -server — asks a running
// pcd daemon, with identical output either way.
//
// Usage:
//
//	pccompare (-store DIR | -server URL) -app poisson \
//	          -a VERSION:RUNID -b VERSION:RUNID [-eps 0.02] [-json]
//	          [-timeout 30s] [-retries 3]
//
// With -server, the request carries a -timeout deadline and transient
// failures (connection trouble, 503s from a degraded daemon) are
// retried -retries times with exponential backoff before giving up.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/client"
	"repro/internal/history"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pccompare: ")
	var (
		storeDir  = flag.String("store", "", "history store directory (or use -server)")
		serverURL = flag.String("server", "", "pcd server URL (alternative to -store)")
		appName   = flag.String("app", "poisson", "application name")
		aRef      = flag.String("a", "", "first run as VERSION:RUNID (required)")
		bRef      = flag.String("b", "", "second run as VERSION:RUNID (required)")
		eps       = flag.Float64("eps", 0.02, "minimum value shift to call a bottleneck improved/worsened")
		jsonOut   = flag.Bool("json", false, "emit the wire-format JSON document instead of text")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request deadline with -server (0 = none)")
		retries   = flag.Int("retries", 3, "retries of transient request failures with -server")
	)
	flag.Parse()
	if (*storeDir == "") == (*serverURL == "") {
		log.Fatal("exactly one of -store and -server is required")
	}
	if *aRef == "" || *bRef == "" {
		log.Fatal("-a and -b are required")
	}

	var resp *server.CompareResponse
	if *serverURL != "" {
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		var err error
		resp, err = client.NewResilient(*serverURL, *retries).Compare(ctx, *appName, *aRef, *bRef, *eps)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		st, err := history.OpenStoreAuto(*storeDir, 0, history.DurableOptions{})
		if err != nil {
			log.Fatal(err)
		}
		load := func(ref string) *history.RunRecord {
			key, err := history.ParseRunKey(*appName, ref)
			if err != nil {
				log.Fatal(err)
			}
			rec, err := st.Load(key.App, key.Version, key.RunID)
			if err != nil {
				log.Fatal(err)
			}
			return rec
		}
		a, b := load(*aRef), load(*bRef)
		resp, err = server.BuildCompareResponse(a, b, *eps)
		if err != nil {
			log.Fatal(err)
		}
		resp.A, resp.B = *aRef, *bRef
	}

	if *jsonOut {
		data, err := server.MarshalCanonical(resp)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
		return
	}
	fmt.Print(resp.Rendered)
	if len(resp.Improved) > 0 {
		fmt.Printf("\nimproved by more than %.0f%% of execution time (%d):\n", *eps*100, len(resp.Improved))
		for _, p := range resp.Improved {
			fmt.Printf("  %+0.3f  %s %s\n", p.Delta(), p.Hyp, p.Focus)
		}
	}
	if len(resp.Worsened) > 0 {
		fmt.Printf("\nworsened by more than %.0f%% of execution time (%d):\n", *eps*100, len(resp.Worsened))
		for _, p := range resp.Worsened {
			fmt.Printf("  %+0.3f  %s %s\n", p.Delta(), p.Hyp, p.Focus)
		}
	}
}
