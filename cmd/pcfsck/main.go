// Command pcfsck verifies an experiment store offline: record files,
// write-ahead-journal framing and CRCs, journal-vs-disk agreement, the
// session journal, and quarantine accounting. Run it against a store no
// daemon has open — after a crash, before restarting pcd, or from cron
// as a consistency audit.
//
// A sharded store (a shards/ layout) is verified end-to-end: the layout
// manifest, every shard as a full store, and the cross-shard placement
// invariant — each record must live on the shard its (app, version)
// hashes to. Misplaced records grade as residue; -repair moves them
// home. -json reports carry per-shard sections and a misplaced count.
//
// A replica is cross-verified with -primary DIR: the follower store
// named by -store must be a subset of the primary's fold (record files
// overlaid with its journal) with byte-identical records. A shared key
// whose bytes differ grades corrupt — the replication stream or the
// follower's fold is damaged. A follower-only key (a write taken after
// promotion) and replication lag grade as residue.
//
// Usage:
//
//	pcfsck [-repair] [-json] [-primary DIR] -store DIR
//
// Exit codes:
//
//	0  clean — nothing to report
//	1  recoverable crash residue (torn WAL tail, unapplied journal
//	   entries, orphaned temp files); OpenStore or -repair fixes it
//	2  corruption (invalid records, bad frames before the journal
//	   tail) or the store could not be checked at all
//
// -repair takes the per-finding repair action in place: temp orphans
// removed, corrupt records quarantined, torn tails truncated, unapplied
// journal entries replayed. The exit code still reflects what was
// FOUND, so scripts can tell a repaired store from a clean one.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/history"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcfsck: ")
	storeDir := flag.String("store", "", "experiment store directory to verify (required)")
	repair := flag.Bool("repair", false, "repair what can be repaired in place")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	primaryDir := flag.String("primary", "", "primary store directory; cross-verify -store (a follower) against its fold")
	flag.Parse()
	if *storeDir == "" {
		log.Println("usage: pcfsck [-repair] [-json] [-primary DIR] -store DIR")
		os.Exit(2)
	}

	rep, err := history.FsckStore(*storeDir, *repair)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	if *primaryDir != "" {
		crep, err := history.FsckReplica(*storeDir, *primaryDir)
		if err != nil {
			log.Println(err)
			os.Exit(2)
		}
		// The cross-replica findings join the store's own report, so one
		// exit code covers both checks.
		rep.Findings = append(rep.Findings, crep.Findings...)
	}

	if *jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Println(err)
			os.Exit(2)
		}
		fmt.Println(string(data))
	} else {
		render(rep)
	}
	os.Exit(rep.Severity())
}

// render prints the human-readable report.
func render(rep *history.FsckReport) {
	if rep.Sharded {
		fmt.Printf("store %s: %d shards, %d records, %d quarantined, %d misplaced, wal %d segments / %d entries\n",
			rep.Dir, rep.ShardCount, rep.Records, rep.Quarantined, rep.Misplaced, rep.WALSegments, rep.WALEntries)
	} else {
		fmt.Printf("store %s: %d records, %d quarantined, wal %d segments / %d entries\n",
			rep.Dir, rep.Records, rep.Quarantined, rep.WALSegments, rep.WALEntries)
	}
	clean := true
	for _, f := range rep.Findings {
		renderFinding("", f)
		clean = false
	}
	for _, sh := range rep.Shards {
		prefix := fmt.Sprintf("%s/%02d/", history.ShardsDirName, sh.Shard)
		for _, f := range sh.Findings {
			renderFinding(prefix, f)
			clean = false
		}
	}
	if clean {
		fmt.Println("clean")
	}
}

// renderFinding prints one finding, its path prefixed with the shard
// directory when it came from a shard section.
func renderFinding(prefix string, f history.FsckFinding) {
	grade := "residue"
	if f.Severity == history.FsckCorrupt {
		grade = "CORRUPT"
	}
	line := fmt.Sprintf("%-7s %s%s: %s", grade, prefix, f.Path, f.Problem)
	switch {
	case f.Repaired:
		line += " [repaired: " + f.Repair + "]"
	case f.Repair != "":
		line += " [-repair would: " + f.Repair + "]"
	}
	fmt.Println(line)
}
