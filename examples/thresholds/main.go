// Thresholds explores the paper's Section 4.2: how the hypothesis
// threshold trades completeness against instrumentation cost, why the
// useful setting is application-specific (12% for the MPI Poisson code,
// 20% for the PVM ocean code), and how a threshold directive is extracted
// automatically from historical data.
//
//	go run ./examples/thresholds
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/consultant"
	"repro/internal/core"
)

func sweep(name string, build func() (*repro.Application, error), thresholds []float64) {
	fmt.Printf("\n%s: synchronization threshold sweep\n", name)
	fmt.Printf("%-10s %-22s %-14s\n", "threshold", "bottlenecks reported", "pairs tested")
	for _, th := range thresholds {
		a, err := build()
		if err != nil {
			log.Fatal(err)
		}
		cfg := repro.DefaultSessionConfig()
		cfg.Directives = &repro.DirectiveSet{
			Thresholds: []core.ThresholdDirective{{Hypothesis: consultant.ExcessiveSync, Value: th}},
		}
		res, err := repro.RunDiagnosis(a, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.0f %-22d %-14d\n", th*100, len(res.Bottlenecks), res.PairsTested)
	}
}

func main() {
	log.SetFlags(0)

	sweep("poisson-C (MPI, SP/2-like)",
		func() (*repro.Application, error) { return repro.PoissonApp("C", repro.AppOptions{}) },
		[]float64{0.30, 0.20, 0.15, 0.12, 0.10, 0.05})

	sweep("ocean (PVM, SPARC-like)",
		func() (*repro.Application, error) { return repro.OceanApp(repro.AppOptions{}) },
		[]float64{0.30, 0.25, 0.20, 0.15, 0.10})

	// Extract a threshold directive from a historical run: the harvester
	// places the threshold in the widest gap between the significant
	// cluster and the noise floor of the measured values.
	a, err := repro.PoissonApp("C", repro.AppOptions{})
	if err != nil {
		log.Fatal(err)
	}
	base, err := repro.RunDiagnosis(a, repro.DefaultSessionConfig())
	if err != nil {
		log.Fatal(err)
	}
	ds := repro.Harvest(base.Record, repro.HarvestOptions{Thresholds: true})
	fmt.Println("\nthresholds extracted from the base run's historical data:")
	for _, th := range ds.Thresholds {
		fmt.Printf("  threshold %s %.3f\n", th.Hypothesis, th.Value)
	}
}
