// Quickstart: diagnose a parallel application once, harvest search
// directives from the run, and watch the directed re-diagnosis find the
// same bottlenecks several times faster.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)

	// 1. Build the paper's 2-D Poisson solver (version C, four
	//    processes) and run the stock "single button" Performance
	//    Consultant on it.
	a, err := repro.PoissonApp("C", repro.AppOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cfg := repro.DefaultSessionConfig()
	cfg.RunID = "base"
	base, err := repro.RunDiagnosis(a, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base diagnosis: %d bottlenecks, %d pairs instrumented, done at virtual t=%.1fs\n",
		len(base.Bottlenecks), base.PairsTested, base.EndTime)
	fmt.Println("\nfirst bottlenecks reported:")
	for i, b := range base.Bottlenecks {
		if i == 5 {
			break
		}
		fmt.Printf("  t=%6.1fs  value=%.2f  %s %s\n", b.FoundAt, b.Value, b.Hyp, b.Focus)
	}

	// 2. Harvest historical knowledge from the run: general prunes,
	//    historic prunes (insignificant functions, redundant machine
	//    hierarchy) and priorities (true pairs high, false pairs low).
	ds := repro.Harvest(base.Record, repro.HarvestAll())
	fmt.Printf("\nharvested %d directives (%d prunes, %d priorities, %d thresholds)\n",
		ds.Len(), len(ds.Prunes), len(ds.Priorities), len(ds.Thresholds))

	// 3. Re-diagnose the application with the directives guiding the
	//    search.
	a2, err := repro.PoissonApp("C", repro.AppOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cfg = repro.DefaultSessionConfig()
	cfg.RunID = "directed"
	cfg.Directives = ds
	directed, err := repro.RunDiagnosis(a2, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndirected diagnosis: %d bottlenecks, %d pairs instrumented, done at virtual t=%.1fs\n",
		len(directed.Bottlenecks), directed.PairsTested, directed.EndTime)
	fmt.Printf("diagnosis time reduced by %.0f%%\n",
		(base.EndTime-directed.EndTime)/base.EndTime*100)
}
