// Postmortem demonstrates the paper's Section 6 extension: harvesting
// search directives when no Performance Consultant results exist — only a
// raw trace gathered by some other monitoring tool. The hypotheses are
// tested after the fact over the recorded data, the same directive kinds
// are extracted, and a subsequent online diagnosis is directed by them.
//
//	go run ./examples/postmortem
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/harness"
)

func main() {
	log.SetFlags(0)

	// 1. A previous execution was observed by a passive tracer — no
	//    Performance Consultant, no instrumentation perturbation.
	traced, err := app.Poisson("C", app.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ev, err := harness.TraceRun(traced, 120, "trace1")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Test the hypotheses postmortem over the trace and package the
	//    outcome as an ordinary run record.
	rec, err := ev.BuildRecord("poisson", "C", "trace1", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("postmortem evaluation: %d pairs concluded, %d true\n",
		len(rec.Results), rec.TrueCount)

	// 3. Harvest directives from the postmortem record with the ordinary
	//    harvester, then direct a live diagnosis with them.
	ds := core.Harvest(rec, core.HarvestOptions{GeneralPrunes: true, HistoricPrunes: true, Priorities: true})
	fmt.Printf("harvested %d directives from the raw trace\n", ds.Len())

	baseApp, err := repro.PoissonApp("C", repro.AppOptions{})
	if err != nil {
		log.Fatal(err)
	}
	base, err := repro.RunDiagnosis(baseApp, repro.DefaultSessionConfig())
	if err != nil {
		log.Fatal(err)
	}
	dirApp, err := repro.PoissonApp("C", repro.AppOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cfg := repro.DefaultSessionConfig()
	cfg.Directives = ds
	directed, err := repro.RunDiagnosis(dirApp, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nundirected online diagnosis:      t=%.1fs (%d pairs)\n", base.EndTime, base.PairsTested)
	fmt.Printf("directed by postmortem harvest:   t=%.1fs (%d pairs)\n", directed.EndTime, directed.PairsTested)
	fmt.Printf("reduction: %.0f%% — without any previous Performance Consultant run\n",
		(base.EndTime-directed.EndTime)/base.EndTime*100)
}
