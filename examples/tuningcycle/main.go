// Tuningcycle replays the paper's Section 4.3 scenario: a developer tunes
// an application through four code versions (A: 1-D blocking, B: 1-D
// non-blocking, C: 2-D decomposition, D: the same code on 8 nodes), and
// every new version is diagnosed with search directives harvested from the
// previous version's run, carried across the renamed modules, functions,
// machine nodes and process IDs by inferred resource mappings.
//
//	go run ./examples/tuningcycle
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

// options gives every version distinct node names and PIDs, so directives
// never transfer without mapping — the situation the paper's Section 3.2
// addresses.
func options(version string) repro.AppOptions {
	switch version {
	case "A":
		return repro.AppOptions{NodeOffset: 1, PidBase: 4000}
	case "B":
		return repro.AppOptions{NodeOffset: 5, PidBase: 4100}
	case "C":
		return repro.AppOptions{NodeOffset: 9, PidBase: 4200}
	default:
		return repro.AppOptions{NodeOffset: 17, PidBase: 4300}
	}
}

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "pchist-store-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := repro.NewStore(dir)
	if err != nil {
		log.Fatal(err)
	}

	harvest := repro.HarvestOptions{GeneralPrunes: true, HistoricPrunes: true, Priorities: true}
	var prev *repro.RunRecord

	for _, version := range []string{"A", "B", "C", "D"} {
		a, err := repro.PoissonApp(version, options(version))
		if err != nil {
			log.Fatal(err)
		}
		cfg := repro.DefaultSessionConfig()
		cfg.RunID = "cycle"

		// Diagnose the new version with directives from the previous one.
		if prev != nil {
			ds := repro.Harvest(prev, harvest)
			// The current version's resource names differ; infer the
			// mapping from the previous run's resources.
			sp, err := a.Space()
			if err != nil {
				log.Fatal(err)
			}
			cur := map[string][]string{}
			for _, h := range sp.Hierarchies() {
				cur[h.Name()] = h.Paths()
			}
			maps := repro.InferMappings(prev.Resources, cur)
			cfg.Directives = ds
			cfg.Mappings = maps
			fmt.Printf("version %s: diagnosing with %d directives from version %s (%d mappings)\n",
				version, ds.Len(), prev.Version, len(maps))
		} else {
			fmt.Printf("version %s: first contact, no historical knowledge\n", version)
		}

		res, err := repro.RunDiagnosis(a, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  -> %d bottlenecks, %d pairs instrumented, diagnosis complete at virtual t=%.1fs\n",
			len(res.Bottlenecks), res.PairsTested, res.EndTime)
		if len(res.Bottlenecks) > 0 {
			top := res.Bottlenecks[0]
			fmt.Printf("  first report: %s %s (value %.2f)\n", top.Hyp, top.Focus, top.Value)
		}

		// Store this run; the next version harvests from it.
		if err := store.Save(res.Record); err != nil {
			log.Fatal(err)
		}
		prev = res.Record
	}

	names, err := store.List()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhistory store now holds %d run records: %v\n", len(names), names)
}
