// Mapping demonstrates the paper's Section 3.2 and Figure 3: resources
// change names between executions (renamed modules and functions across
// code versions, different machine nodes and process IDs across runs), so
// search directives must be mapped into the new execution's namespace
// before the Performance Consultant can use them.
//
//	go run ./examples/mapping
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	log.SetFlags(0)

	// Build versions A (blocking 1-D) and B (non-blocking 1-D). Between
	// them, oned.f became onednb.f, sweep.f/sweep1d became
	// nbsweep.f/nbsweep, and exchng1.f/exchng1 became
	// nbexchng.f/nbexchng1 — the paper's Figure 3 renames.
	aApp, err := repro.PoissonApp("A", repro.AppOptions{NodeOffset: 1, PidBase: 4000})
	if err != nil {
		log.Fatal(err)
	}
	bApp, err := repro.PoissonApp("B", repro.AppOptions{NodeOffset: 5, PidBase: 4100})
	if err != nil {
		log.Fatal(err)
	}
	resourcesOf := func(a *repro.Application) map[string][]string {
		sp, err := a.Space()
		if err != nil {
			log.Fatal(err)
		}
		out := map[string][]string{}
		for _, h := range sp.Hierarchies() {
			out[h.Name()] = h.Paths()
		}
		return out
	}
	aRes, bRes := resourcesOf(aApp), resourcesOf(bApp)

	// The execution map: which Code resources are unique to each version.
	fmt.Println("combined execution map (Code hierarchy):")
	inA, inB := map[string]bool{}, map[string]bool{}
	for _, p := range aRes["Code"] {
		inA[p] = true
	}
	for _, p := range bRes["Code"] {
		inB[p] = true
	}
	for _, p := range aRes["Code"] {
		tag := 3
		if !inB[p] {
			tag = 1
		}
		fmt.Printf("  [%d] %s\n", tag, p)
	}
	for _, p := range bRes["Code"] {
		if !inA[p] {
			fmt.Printf("  [2] %s\n", p)
		}
	}

	// Infer the mappings automatically (name-similarity pairing of the
	// unique resources) and show them in the paper's input-file format.
	maps := repro.InferMappings(aRes, bRes)
	fmt.Println("\ninferred mapping directives:")
	for _, m := range maps {
		fmt.Printf("  map %s %s\n", m.From, m.To)
	}

	// Harvest directives from a run of A and map them into B's namespace.
	base, err := repro.RunDiagnosis(aApp, repro.DefaultSessionConfig())
	if err != nil {
		log.Fatal(err)
	}
	ds := repro.Harvest(base.Record, repro.HarvestOptions{Priorities: true})
	mapped, err := repro.ApplyMappings(ds, maps)
	if err != nil {
		log.Fatal(err)
	}
	moved := 0
	for i := range ds.Priorities {
		if ds.Priorities[i].Focus != mapped.Priorities[i].Focus {
			moved++
		}
	}
	fmt.Printf("\nharvested %d priority directives from a run of A; %d were rewritten for B\n",
		len(ds.Priorities), moved)
	for i := range ds.Priorities {
		if ds.Priorities[i].Focus != mapped.Priorities[i].Focus && strings.Contains(ds.Priorities[i].Focus, "sweep") {
			fmt.Printf("  e.g. %s\n    -> %s\n", ds.Priorities[i].Focus, mapped.Priorities[i].Focus)
			break
		}
	}

	// The mapped directives now parse against B's resource space: run B
	// with them.
	cfg := repro.DefaultSessionConfig()
	cfg.Directives = ds
	cfg.Mappings = maps
	res, err := repro.RunDiagnosis(bApp, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndirected diagnosis of B with A's mapped directives: %d bottlenecks at virtual t=%.1fs (skipped %d unmappable directives)\n",
		len(res.Bottlenecks), res.EndTime, res.SkippedDirectives)
}
