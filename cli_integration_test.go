package repro

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/loadgen"
)

// TestCLIPipeline builds every command-line tool and drives the complete
// workflow the paper describes: diagnose and store a run, harvest
// directives, re-diagnose under direction, gather a raw trace and harvest
// from it, query the store, and compare two executions.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	tools := []string{"pcrun", "pcextract", "pctrace", "pcquery", "pccompare", "pcbench", "pcd"}
	for _, tool := range tools {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	work := t.TempDir()
	store := filepath.Join(work, "store")
	run := func(tool string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, tool), args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %s: %v\n%s", tool, strings.Join(args, " "), err, out)
		}
		return string(out)
	}

	// 1. Base diagnoses of two versions, stored.
	out := run("pcrun", "-app", "poisson", "-version", "A", "-store", store, "-run-id", "base")
	if !strings.Contains(out, "search quiesced:    true") {
		t.Fatalf("base run did not quiesce:\n%s", out)
	}
	run("pcrun", "-app", "poisson", "-version", "B", "-store", store, "-run-id", "base", "-node-offset", "5")

	// 2. Harvest directives from A mapped toward B, then diagnose B with
	//    them.
	dirFile := filepath.Join(work, "a-to-b.txt")
	out = run("pcextract", "-store", store, "-app", "poisson", "-version", "A", "-run-id", "base",
		"-map-to", "B:base", "-o", dirFile)
	if !strings.Contains(out, "wrote") || !strings.Contains(out, "inferred") {
		t.Fatalf("pcextract output unexpected:\n%s", out)
	}
	data, err := os.ReadFile(dirFile)
	if err != nil || !strings.Contains(string(data), "priority high") {
		t.Fatalf("directive file malformed: %v\n%s", err, data)
	}
	if !strings.Contains(string(data), "nbsweep.f") {
		t.Fatalf("mapping did not rewrite module names:\n%.400s", data)
	}
	out = run("pcrun", "-app", "poisson", "-version", "B", "-node-offset", "5", "-directives", dirFile)
	if !strings.Contains(out, "bottlenecks found:") {
		t.Fatalf("directed run output unexpected:\n%s", out)
	}

	// 3. Raw trace -> postmortem harvest -> directed run.
	traceFile := filepath.Join(work, "trace.jsonl")
	run("pctrace", "-app", "poisson", "-version", "C", "-duration", "60", "-o", traceFile)
	pmFile := filepath.Join(work, "pm.txt")
	run("pcextract", "-trace", traceFile, "-app", "poisson", "-version", "C", "-o", pmFile)
	out = run("pcrun", "-app", "poisson", "-version", "C", "-directives", pmFile)
	if !strings.Contains(out, "search quiesced:    true") {
		t.Fatalf("postmortem-directed run did not quiesce:\n%s", out)
	}

	// 4. Query the store.
	out = run("pcquery", "-store", store, "-app", "poisson", "-list")
	if !strings.Contains(out, "poisson-A-base") || !strings.Contains(out, "poisson-B-base") {
		t.Fatalf("pcquery -list:\n%s", out)
	}
	out = run("pcquery", "-store", store, "-app", "poisson", "-state", "true", "-min", "0.3")
	if !strings.Contains(out, "matching results") {
		t.Fatalf("pcquery results:\n%s", out)
	}
	out = run("pcquery", "-store", store, "-app", "poisson", "-persistent", "1")
	if !strings.Contains(out, "runs") {
		t.Fatalf("pcquery persistent:\n%s", out)
	}

	// 5. Compare the two stored executions.
	out = run("pccompare", "-store", store, "-app", "poisson", "-a", "A:base", "-b", "B:base")
	if !strings.Contains(out, "run comparison") || !strings.Contains(out, "bottlenecks in both runs") {
		t.Fatalf("pccompare:\n%s", out)
	}

	// 6. One figure through pcbench.
	out = run("pcbench", "-exp", "fig3")
	if !strings.Contains(out, "map /Code/oned.f /Code/onednb.f") {
		t.Fatalf("pcbench fig3:\n%s", out)
	}

	// 6b. A full table through the parallel scheduler: four workers must
	// produce exactly the sequential output.
	parallelOut := run("pcbench", "-exp", "table1", "-trials", "1", "-parallel", "4")
	if !strings.Contains(parallelOut, "Table 1") || !strings.Contains(parallelOut, "Priorities & All Prunes") {
		t.Fatalf("pcbench table1 -parallel 4:\n%s", parallelOut)
	}
	sequentialOut := run("pcbench", "-exp", "table1", "-trials", "1", "-parallel", "1")
	if parallelOut != sequentialOut {
		t.Fatalf("pcbench table1 output differs between -parallel 4 and -parallel 1:\n--- parallel ---\n%s\n--- sequential ---\n%s",
			parallelOut, sequentialOut)
	}

	// 6c. Persisting experiment records: -store must not change the
	// rendered table, and the records must be browsable afterwards.
	benchStore := filepath.Join(work, "bench-store")
	storedOut := run("pcbench", "-exp", "table1", "-trials", "1", "-parallel", "4", "-store", benchStore)
	if storedOut != sequentialOut {
		t.Fatalf("pcbench table1 output differs with -store:\n--- stored ---\n%s\n--- sequential ---\n%s",
			storedOut, sequentialOut)
	}
	out = run("pcquery", "-store", benchStore, "-app", "poisson", "-list")
	if !strings.Contains(out, "poisson-C-t1-base") {
		t.Fatalf("pcbench -store records not browsable:\n%s", out)
	}

	// 7. Most specific bottlenecks of a stored run.
	out = run("pcquery", "-store", store, "-app", "poisson", "-version", "A", "-run-id", "base", "-specific")
	if !strings.Contains(out, "most specific bottlenecks") || !strings.Contains(out, "value=") {
		t.Fatalf("pcquery -specific:\n%s", out)
	}

	// 8. A mistyped store path must be an error, not an empty result:
	// the read-only tools and the daemon exit non-zero.
	runFail := func(tool string, args ...string) {
		t.Helper()
		if out, err := exec.Command(filepath.Join(bin, tool), args...).CombinedOutput(); err == nil {
			t.Fatalf("%s %s succeeded on a missing store:\n%s", tool, strings.Join(args, " "), out)
		}
	}
	missing := filepath.Join(work, "no-such-store")
	runFail("pcquery", "-store", missing, "-app", "poisson", "-list")
	runFail("pcextract", "-store", missing, "-app", "poisson", "-version", "A", "-run-id", "base")
	runFail("pccompare", "-store", missing, "-app", "poisson", "-a", "A:base", "-b", "B:base")
	runFail("pcd", "-store", missing, "-addr", "127.0.0.1:0")

	// 9. The daemon pipeline: serve the store over HTTP and require the
	// -server output of pcquery/pccompare to be byte-identical to the
	// -store output, then drain on SIGTERM.
	daemon := exec.Command(filepath.Join(bin, "pcd"), "-store", store, "-addr", "127.0.0.1:0")
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	daemon.Stderr = daemon.Stdout
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer daemon.Process.Kill()
	// The first stdout line is the startup handshake carrying the bound
	// address.
	sc := bufio.NewScanner(stdout)
	handshake := make(chan string, 1)
	go func() {
		if sc.Scan() {
			handshake <- sc.Text()
		}
		close(handshake)
	}()
	var serving string
	select {
	case serving = <-handshake:
	case <-time.After(10 * time.Second):
		t.Fatal("pcd did not print its serving line")
	}
	i := strings.Index(serving, "http://")
	j := strings.Index(serving, " (store")
	if i < 0 || j < i {
		t.Fatalf("pcd handshake line unexpected: %q", serving)
	}
	url := serving[i:j]

	for _, args := range [][]string{
		{"-app", "poisson", "-state", "true", "-min", "0.3", "-json"},
		{"-app", "poisson", "-persistent", "1", "-json"},
		{"-app", "poisson", "-specific", "-ref", "A:base", "-json"},
		{"-list", "-json"},
	} {
		local := run("pcquery", append([]string{"-store", store}, args...)...)
		remote := run("pcquery", append([]string{"-server", url}, args...)...)
		if local != remote {
			t.Fatalf("pcquery %s differs between -store and -server:\n--- store ---\n%s\n--- server ---\n%s",
				strings.Join(args, " "), local, remote)
		}
	}
	cmpArgs := []string{"-app", "poisson", "-a", "A:base", "-b", "B:base", "-json"}
	localCmp := run("pccompare", append([]string{"-store", store}, cmpArgs...)...)
	remoteCmp := run("pccompare", append([]string{"-server", url}, cmpArgs...)...)
	if localCmp != remoteCmp {
		t.Fatalf("pccompare -json differs between -store and -server:\n--- store ---\n%s\n--- server ---\n%s",
			localCmp, remoteCmp)
	}

	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("pcd exited with %v after SIGTERM", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pcd did not stop within 10s of SIGTERM")
	}

	// 10. Diagnosis artifacts: SHG dot, timeline CSV, HTML report.
	dot := filepath.Join(work, "shg.dot")
	csv := filepath.Join(work, "timeline.csv")
	htmlFile := filepath.Join(work, "report.html")
	run("pcrun", "-app", "seismic", "-dot", dot, "-timeline", csv, "-report", htmlFile)
	for _, f := range []struct{ path, want string }{
		{dot, "digraph SHG"},
		{csv, "time,cpu,sync_wait,io_wait"},
		{htmlFile, "Where to tune first"},
	} {
		data, err := os.ReadFile(f.path)
		if err != nil || !strings.Contains(string(data), f.want) {
			t.Fatalf("artifact %s missing %q: %v", f.path, f.want, err)
		}
	}
}

// TestCLIFsckExitCodes pins pcfsck's scripting contract: exit 0 on a
// clean store, 1 on recoverable crash residue, 2 on corruption — with
// -json output that parses into history.FsckReport and carries the
// matching findings.
func TestCLIFsckExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := filepath.Join(t.TempDir(), "pcfsck")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/pcfsck").CombinedOutput(); err != nil {
		t.Fatalf("build pcfsck: %v\n%s", err, out)
	}
	fsck := func(dir string) (int, *history.FsckReport) {
		t.Helper()
		cmd := exec.Command(bin, "-json", "-store", dir)
		out, err := cmd.Output()
		code := 0
		if err != nil {
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("pcfsck -store %s: %v", dir, err)
			}
			code = ee.ExitCode()
		}
		var rep history.FsckReport
		if jerr := json.Unmarshal(out, &rep); jerr != nil {
			t.Fatalf("pcfsck -json output does not parse: %v\n%s", jerr, out)
		}
		return code, &rep
	}

	// A cleanly closed store grades 0 with no findings.
	dir := t.TempDir()
	st, err := history.OpenStoreDurable(dir, history.DurableOptions{Create: true, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Save(loadgen.SyntheticRecord(1, i, fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	code, rep := fsck(dir)
	if code != 0 || len(rep.Findings) != 0 {
		t.Fatalf("clean store: exit %d, findings %+v", code, rep.Findings)
	}
	if rep.Records != 3 {
		t.Errorf("clean store report: %d records, want 3", rep.Records)
	}

	// An orphaned atomic-write temp file is residue: exit 1.
	orphan := filepath.Join(dir, ".put-orphan.tmp")
	if err := os.WriteFile(orphan, []byte("half a record"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, rep = fsck(dir)
	if code != 1 {
		t.Fatalf("residue store: exit %d, want 1", code)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Severity == history.FsckResidue && strings.Contains(f.Path, ".put-orphan.tmp") {
			found = true
		}
		if f.Severity == history.FsckCorrupt {
			t.Errorf("residue store graded corrupt: %+v", f)
		}
	}
	if !found {
		t.Fatalf("orphan temp file not reported: %+v", rep.Findings)
	}
	if err := os.Remove(orphan); err != nil {
		t.Fatal(err)
	}

	// Overwriting a journaled record with garbage is only residue — the
	// WAL holds the acknowledged bytes and replay restores them.
	// (Record r1 has index 1, so it carries version v2.)
	recFile := filepath.Join(dir, "loadapp-v2-r1.json")
	good, err := os.ReadFile(recFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(recFile, []byte("{ not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, rep = fsck(dir)
	if code != 1 {
		t.Fatalf("journal-covered damage: exit %d, want 1 (WAL can replay it)", code)
	}
	if err := os.WriteFile(recFile, good, 0o644); err != nil {
		t.Fatal(err)
	}

	// A garbage record the journal never saw cannot be reconstructed:
	// exit 2, and it outranks any residue also present.
	bogus := filepath.Join(dir, "loadapp-v1-zz.json")
	if err := os.WriteFile(bogus, []byte("{ not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(orphan, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, rep = fsck(dir)
	if code != 2 {
		t.Fatalf("corrupt store: exit %d, want 2", code)
	}
	corrupt := false
	for _, f := range rep.Findings {
		if f.Severity == history.FsckCorrupt && strings.Contains(f.Path, "loadapp-v1-zz.json") {
			corrupt = true
		}
	}
	if !corrupt {
		t.Fatalf("corrupt record not reported: %+v", rep.Findings)
	}
}

// TestCLIFsckShardedExitCodes pins the same 0/1/2 scripting contract on
// a sharded store: exit 0 when every shard is clean, 1 for a record
// sitting on the wrong shard (with -repair moving it home), 2 when one
// shard holds corruption — and -json reports carrying per-shard
// sections plus the misplaced count throughout.
func TestCLIFsckShardedExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := filepath.Join(t.TempDir(), "pcfsck")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/pcfsck").CombinedOutput(); err != nil {
		t.Fatalf("build pcfsck: %v\n%s", err, out)
	}
	fsck := func(args ...string) (int, *history.FsckReport) {
		t.Helper()
		cmd := exec.Command(bin, append([]string{"-json"}, args...)...)
		out, err := cmd.Output()
		code := 0
		if err != nil {
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("pcfsck %s: %v", strings.Join(args, " "), err)
			}
			code = ee.ExitCode()
		}
		var rep history.FsckReport
		if jerr := json.Unmarshal(out, &rep); jerr != nil {
			t.Fatalf("pcfsck -json output does not parse: %v\n%s", jerr, out)
		}
		return code, &rep
	}

	// Build a 4-shard store whose records cover at least two shards.
	dir := t.TempDir()
	st, err := history.OpenSharded(dir, 4, history.DurableOptions{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	shardsUsed := map[int]bool{}
	for i := 0; i < 8; i++ {
		rec := loadgen.SyntheticRecord(1, i, "r0")
		rec.Version = fmt.Sprintf("v%d", i)
		if err := st.Save(rec); err != nil {
			t.Fatal(err)
		}
		shardsUsed[history.ShardForKey(rec.App, rec.Version, 4)] = true
	}
	if len(shardsUsed) < 2 {
		t.Fatalf("fixture landed on %d shards, need at least 2", len(shardsUsed))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean: exit 0, sharded report with one section per shard.
	code, rep := fsck("-store", dir)
	if code != 0 {
		t.Fatalf("clean sharded store: exit %d, findings %+v", code, rep.Findings)
	}
	if !rep.Sharded || rep.ShardCount != 4 || len(rep.Shards) != 4 {
		t.Fatalf("report sharded=%v count=%d sections=%d, want a 4-shard report", rep.Sharded, rep.ShardCount, len(rep.Shards))
	}
	if rep.Records != 8 || rep.Misplaced != 0 {
		t.Fatalf("clean report: %d records, %d misplaced, want 8 and 0", rep.Records, rep.Misplaced)
	}
	perShard := 0
	for _, sh := range rep.Shards {
		perShard += sh.Records
	}
	if perShard != 8 {
		t.Errorf("per-shard sections count %d records, want 8", perShard)
	}

	// A record on the wrong shard is residue: exit 1, misplaced counted,
	// the finding in the holding shard's section.
	app := loadgen.StoreApp
	home := history.ShardForKey(app, "v0", 4)
	wrong := (home + 1) % 4
	name := fmt.Sprintf("%s-v0-r0.json", app)
	shardDir := func(i int) string {
		return filepath.Join(dir, history.ShardsDirName, fmt.Sprintf("%02d", i))
	}
	if err := os.Rename(filepath.Join(shardDir(home), name), filepath.Join(shardDir(wrong), name)); err != nil {
		t.Fatal(err)
	}
	code, rep = fsck("-store", dir)
	if code != 1 {
		t.Fatalf("misplaced record: exit %d, want 1", code)
	}
	if rep.Misplaced != 1 {
		t.Fatalf("misplaced count = %d, want 1", rep.Misplaced)
	}
	found := false
	for _, sh := range rep.Shards {
		for _, f := range sh.Findings {
			if sh.Shard == wrong && f.Path == name && f.Severity == history.FsckResidue {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("placement finding missing from shard %02d section: %+v", wrong, rep.Shards)
	}

	// -repair moves it home (exit still reflects what was found), after
	// which the store grades clean again.
	if code, _ = fsck("-repair", "-store", dir); code != 1 {
		t.Fatalf("repair pass: exit %d, want 1", code)
	}
	if code, rep = fsck("-store", dir); code != 0 || rep.Misplaced != 0 {
		t.Fatalf("after repair: exit %d, %d misplaced, want clean", code, rep.Misplaced)
	}

	// Corruption inside one shard grades the whole store 2, outranking
	// any residue, and names the shard section holding it.
	bogus := filepath.Join(shardDir(home), app+"-v0-zz.json")
	if err := os.WriteFile(bogus, []byte("{ not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(shardDir(home), name), filepath.Join(shardDir(wrong), name)); err != nil {
		t.Fatal(err)
	}
	code, rep = fsck("-store", dir)
	if code != 2 {
		t.Fatalf("corrupt shard: exit %d, want 2", code)
	}
	corruptFound := false
	for _, sh := range rep.Shards {
		for _, f := range sh.Findings {
			if sh.Shard == home && f.Severity == history.FsckCorrupt && strings.Contains(f.Path, "v0-zz") {
				corruptFound = true
			}
		}
	}
	if !corruptFound {
		t.Fatalf("corrupt record not reported in shard %02d section: %+v", home, rep.Shards)
	}
}
