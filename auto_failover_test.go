package repro

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/client"
	"repro/internal/harness"
	"repro/internal/history"
	"repro/internal/replica"
	"repro/internal/server"
)

// The self-driving failover harnesses: a real replicated pcd pair under
// automatic failover. TestKillPrimaryAutoFailover SIGKILLs the primary
// mid-load with NO operator promote — the lease-based failure detector
// must elect and promote the follower on its own within three lease
// TTLs, lose nothing acked, and fence the revived zombie with the typed
// 409. TestFailoverFlapping runs three kill/revive cycles and demands
// exactly one writable node at every step, a monotonically increasing
// epoch, and a final keyspace byte-identical to a never-faulted run.
// internal/replica tests the detector, election, fencing, and rejoin
// layers in isolation; these are the end-to-end proofs.

// autoLeaseTTL is the harness's failure-detection window. Promotion is
// asserted within three of these, so it balances test runtime against
// scheduler-noise headroom under -race.
const autoLeaseTTL = 500 * time.Millisecond

// freePort reserves a listenable TCP port and releases it for the
// daemon to bind. Auto-failover nodes must know each other's URLs
// before starting (-advertise, -peers), and a revived zombie must come
// back on the address the cluster remembers — so ports are chosen up
// front instead of letting -addr :0 pick.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

// startAutoDaemon launches pcd and waits for the "pcd: serving on"
// line specifically. The generic startDaemon takes the first line
// containing a URL, but an auto-failover node may log peer URLs before
// serving (the startup rejoin handshake announces the winner it is
// demoting under), so the scan must key on the serving line itself.
func startAutoDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(filepath.Join(bin, "pcd"), args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	sc := bufio.NewScanner(stdout)
	handshake := make(chan string, 1)
	go func() {
		sent := false
		for sc.Scan() {
			line := sc.Text()
			if !sent && strings.Contains(line, "pcd: serving on ") {
				handshake <- line
				sent = true
			}
		}
		if !sent {
			close(handshake)
		}
	}()
	var serving string
	select {
	case serving = <-handshake:
	case <-time.After(30 * time.Second):
		t.Fatalf("pcd %s did not print its serving line", strings.Join(args, " "))
	}
	i := strings.Index(serving, "http://")
	j := strings.Index(serving, " (store")
	if i < 0 || j < i {
		t.Fatalf("pcd handshake line unexpected: %q", serving)
	}
	return &daemon{cmd: cmd, url: serving[i:j]}
}

// putUntilWritable retries one idempotent write until the cluster
// accepts it — the moment of acceptance is the moment the failover
// completed — and fails the test if that takes past deadline.
func putUntilWritable(t *testing.T, ctx context.Context, cl *client.Client, rec *history.RunRecord, deadline time.Time, what string) {
	t.Helper()
	var lastErr error
	for {
		if _, lastErr = cl.PutRun(ctx, rec); lastErr == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: not writable by the deadline (last error: %v)", what, lastErr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestKillPrimaryAutoFailover is the tentpole's acceptance harness: a
// two-shard auto-failover pair takes mixed load, the primary is
// SIGKILLed mid-stream, and with no promote call from anyone the
// follower must become writable within three lease TTLs. Every write
// the dead primary acknowledged must survive byte-identically, the full
// workload's query results must match a never-faulted daemon, and the
// revived old primary must demote itself at startup and refuse a write
// with the typed fencing error.
func TestKillPrimaryAutoFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and kills processes")
	}
	bin := buildTools(t, "pcd", "pcfsck")
	ctx := context.Background()

	a, err := app.Build("poisson", "A", app.Options{NodeOffset: 1, PidBase: 4000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := harness.DefaultSessionConfig()
	cfg.MaxTime = 5000
	res, err := harness.RunSession(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Indices 0..total-1 are the mixed load; index total is the failover
	// probe — the write retried across the outage whose acceptance marks
	// the follower's self-promotion.
	const total = 30
	record := func(i int) *history.RunRecord {
		rec := *res.Record
		rec.RunID = fmt.Sprintf("w%04d", i)
		if i%2 == 1 {
			rec.Version = "B"
		}
		return &rec
	}

	// Reference: the same workload on a daemon that is never faulted.
	refStore := filepath.Join(t.TempDir(), "ref-store")
	ref := startDaemon(t, bin, "-store", refStore, "-addr", "127.0.0.1:0", "-create", "-shards", "2")
	refCl := client.New(ref.url)
	if err := refCl.WaitHealthy(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= total; i++ {
		if _, err := refCl.PutRun(ctx, record(i)); err != nil {
			t.Fatalf("reference put %d: %v", i, err)
		}
	}
	want, err := refCl.QueryRaw(ctx, client.QueryParams{App: "poisson"})
	if err != nil {
		t.Fatal(err)
	}
	ref.stop(t)

	// The auto-failover pair on pre-chosen ports: each node advertises
	// the URL the other will reach it at, and the primary's port is what
	// the zombie revives on. The follower gets no -peers — its electorate
	// is the other followers (none here), not the primary it watches.
	primPort, folPort := freePort(t), freePort(t)
	primAddr := fmt.Sprintf("127.0.0.1:%d", primPort)
	folAddr := fmt.Sprintf("127.0.0.1:%d", folPort)
	primURL, folURL := "http://"+primAddr, "http://"+folAddr
	primStore := filepath.Join(t.TempDir(), "prim-store")
	folStore := filepath.Join(t.TempDir(), "fol-store")
	ttl := autoLeaseTTL.String()
	prim := startAutoDaemon(t, bin,
		"-store", primStore, "-addr", primAddr, "-create",
		"-shards", "2", "-replicas", "1", "-auto-failover",
		"-lease-ttl", ttl, "-advertise", primURL, "-peers", folURL)
	fol := startAutoDaemon(t, bin,
		"-store", folStore, "-addr", folAddr, "-create",
		"-follow", primURL, "-auto-failover",
		"-lease-ttl", ttl, "-advertise", folURL)
	primCl := client.New(prim.url)
	folCl := client.New(fol.url)
	if err := primCl.WaitHealthy(ctx); err != nil {
		t.Fatal(err)
	}
	if err := folCl.WaitHealthy(ctx); err != nil {
		t.Fatal(err)
	}
	waitReplication(t, prim.url, "follower attached on every shard",
		func(sh replica.ShardReplStats) bool { return len(sh.Followers) > 0 })
	epoch0 := daemonStats(t, prim.url).Replication.Epoch

	// Mixed load against the primary; SIGKILL arrives asynchronously
	// mid-stream. Only an acknowledged write creates an obligation.
	acked := map[int][]byte{}
	next := 0
	killAt := time.After(300 * time.Millisecond)
	killed := false
	var killedTime time.Time
	for !killed && next < total {
		select {
		case <-killAt:
			prim.kill(t)
			killed, killedTime = true, time.Now()
		default:
			rec := record(next)
			if _, err := primCl.PutRun(ctx, rec); err == nil {
				data, merr := server.MarshalCanonical(rec)
				if merr != nil {
					t.Fatal(merr)
				}
				acked[next] = data
			}
			if next%5 == 4 {
				for i := next; i >= 0; i-- {
					if acked[i] == nil {
						continue
					}
					rec := record(i)
					if _, err := folCl.GetRun(ctx, "poisson", rec.Version+":"+rec.RunID); err != nil {
						t.Fatalf("read of acked write %s from the follower failed mid-load: %v", rec.RunID, err)
					}
					break
				}
			}
			next++
		}
	}
	if !killed {
		prim.kill(t)
		killedTime = time.Now()
	}
	if len(acked) == 0 {
		t.Fatal("no write was ever acknowledged before the kill; the harness proved nothing")
	}

	// The primary is dead and nobody calls promote. The probe write must
	// be accepted — by the follower deciding, on its own, that it is the
	// primary now — within three lease TTLs of the kill.
	probe := record(total)
	putUntilWritable(t, ctx, folCl, probe, killedTime.Add(3*autoLeaseTTL),
		"automatic failover")
	t.Logf("cluster writable again %v after SIGKILL (lease TTL %v)", time.Since(killedTime), autoLeaseTTL)
	probeBytes, err := server.MarshalCanonical(probe)
	if err != nil {
		t.Fatal(err)
	}
	acked[total] = probeBytes
	stats := daemonStats(t, fol.url).Replication
	if stats == nil || stats.Role != "primary" {
		t.Fatalf("follower accepted a write but does not report the primary role: %+v", stats)
	}
	if stats.Epoch <= epoch0 {
		t.Fatalf("self-promotion did not advance the epoch: %d -> %d", epoch0, stats.Epoch)
	}

	// Zero acked-write loss: every write the dead primary acknowledged is
	// on the self-promoted follower byte-identically.
	for i, wantRec := range acked {
		rec := record(i)
		got, err := folCl.GetRun(ctx, "poisson", rec.Version+":"+rec.RunID)
		if err != nil {
			t.Fatalf("acked write %s lost across automatic failover: %v", rec.RunID, err)
		}
		data, err := server.MarshalCanonical(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, wantRec) {
			t.Fatalf("record %s differs from its acked bytes after automatic failover", rec.RunID)
		}
	}

	// Land the rest of the workload on the new primary.
	for i := 0; i < total; i++ {
		if acked[i] != nil {
			continue
		}
		if _, err := folCl.PutRun(ctx, record(i)); err != nil {
			t.Fatalf("write %d refused after self-promotion: %v", i, err)
		}
	}
	got, err := folCl.QueryRaw(ctx, client.QueryParams{App: "poisson"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("failed-over query results differ from the unfaulted run:\n got: %s\nwant: %s", got, want)
	}

	// Revive the old primary on its original port with its original
	// role flags. The startup rejoin handshake must discover the newer
	// epoch and demote it — and a write against the zombie must be
	// refused with the typed fencing error, not accepted and not lost in
	// a generic failure.
	zombie := startAutoDaemon(t, bin,
		"-store", primStore, "-addr", primAddr,
		"-replicas", "1", "-auto-failover",
		"-lease-ttl", ttl, "-advertise", primURL, "-peers", folURL)
	zCl := client.New(zombie.url)
	if err := zCl.WaitHealthy(ctx); err != nil {
		t.Fatal(err)
	}
	zrec := record(0)
	zrec.RunID = "zombie-write"
	_, zerr := zCl.PutRun(ctx, zrec)
	if zerr == nil {
		t.Fatal("the revived old primary accepted a write: split brain")
	}
	if !errors.Is(zerr, client.ErrFenced) {
		t.Fatalf("zombie write refused with %v, want errors.Is(err, client.ErrFenced)", zerr)
	}
	if zstats := daemonStats(t, zombie.url).Replication; zstats == nil || zstats.Role != "follower" {
		t.Fatalf("revived old primary reports role %+v, want follower after rejoin", zstats)
	}

	// The zombie catches up as a follower of the node that fenced it;
	// once its ack reaches the head it serves the failover-era writes.
	waitReplication(t, fol.url, "rejoined old primary caught up",
		func(sh replica.ShardReplStats) bool {
			if sh.Promoted {
				return true
			}
			for _, f := range sh.Followers {
				if f.ID == primURL && f.AckSeq == sh.HeadSeq {
					return true
				}
			}
			return false
		})
	zgot, err := zCl.GetRun(ctx, "poisson", probe.Version+":"+probe.RunID)
	if err != nil {
		t.Fatalf("failover-era write not readable from the rejoined node: %v", err)
	}
	if data, _ := server.MarshalCanonical(zgot); !bytes.Equal(data, probeBytes) {
		t.Fatal("rejoined node serves different bytes for the failover probe than were acknowledged")
	}

	// Drain clean. The new primary's store must verify clean; the
	// zombie's store took a SIGKILL and a divergence quarantine — crash
	// residue is legal, corruption is not, and the cross-replica check
	// must find no divergence inside the live keyspace.
	zombie.stop(t)
	fol.stop(t)
	if code, out := fsck(t, bin, folStore, false); code != 0 {
		t.Fatalf("pcfsck grades the self-promoted store %d:\n%s", code, out)
	}
	if code, out := fsck(t, bin, primStore, false); code == 2 {
		t.Fatalf("pcfsck grades the rejoined zombie store corrupt:\n%s", out)
	}
	if code, out := fsckReplica(t, bin, primStore, folStore); code == 2 {
		t.Fatalf("cross-replica verification found divergence after rejoin:\n%s", out)
	}
}

// TestFailoverFlapping alternates the primary role across two nodes
// through three SIGKILL/revive cycles under load. At every step exactly
// one node accepts writes (the survivor's self-promotion opens its
// keyspace; the revived zombie's startup rejoin fences it shut), the
// cluster epoch rises with every handover, nothing acknowledged is ever
// lost, and the final keyspace — on both nodes — answers queries
// byte-identically to a daemon that never crashed.
func TestFailoverFlapping(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and kills processes repeatedly")
	}
	bin := buildTools(t, "pcd", "pcfsck")
	ctx := context.Background()

	ap, err := app.Build("poisson", "A", app.Options{NodeOffset: 1, PidBase: 4000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := harness.DefaultSessionConfig()
	cfg.MaxTime = 5000
	res, err := harness.RunSession(ap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 8 records per cycle across 3 cycles; versions alternate so the
	// load spans both shard keyspaces.
	const cycles, perCycle = 3, 8
	const total = cycles * perCycle
	record := func(i int) *history.RunRecord {
		rec := *res.Record
		rec.RunID = fmt.Sprintf("f%04d", i)
		if i%2 == 1 {
			rec.Version = "B"
		}
		return &rec
	}

	refStore := filepath.Join(t.TempDir(), "ref-store")
	ref := startDaemon(t, bin, "-store", refStore, "-addr", "127.0.0.1:0", "-create", "-shards", "2")
	refCl := client.New(ref.url)
	if err := refCl.WaitHealthy(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if _, err := refCl.PutRun(ctx, record(i)); err != nil {
			t.Fatalf("reference put %d: %v", i, err)
		}
	}
	want, err := refCl.QueryRaw(ctx, client.QueryParams{App: "poisson"})
	if err != nil {
		t.Fatal(err)
	}
	ref.stop(t)

	// Two nodes on pre-chosen ports. Revives pass no -peers: the rejoin
	// handshake finds the winner through the store's persisted follower
	// registry (PEERS.json), which both sides accumulate as they attach
	// to each other across cycles.
	type fnode struct {
		d     *daemon
		store string
		addr  string
		url   string
	}
	mk := func(name string) *fnode {
		port := freePort(t)
		addr := fmt.Sprintf("127.0.0.1:%d", port)
		return &fnode{store: filepath.Join(t.TempDir(), name), addr: addr, url: "http://" + addr}
	}
	na, nb := mk("store-a"), mk("store-b")
	ttl := autoLeaseTTL.String()
	na.d = startAutoDaemon(t, bin,
		"-store", na.store, "-addr", na.addr, "-create",
		"-shards", "2", "-replicas", "1", "-auto-failover",
		"-lease-ttl", ttl, "-advertise", na.url)
	nb.d = startAutoDaemon(t, bin,
		"-store", nb.store, "-addr", nb.addr, "-create",
		"-follow", na.url, "-auto-failover",
		"-lease-ttl", ttl, "-advertise", nb.url)
	if err := client.New(na.d.url).WaitHealthy(ctx); err != nil {
		t.Fatal(err)
	}
	if err := client.New(nb.d.url).WaitHealthy(ctx); err != nil {
		t.Fatal(err)
	}
	waitReplication(t, na.d.url, "follower attached on every shard",
		func(sh replica.ShardReplStats) bool { return len(sh.Followers) > 0 })

	// caughtUp accepts the merged /statsz shard gauges of a promoted
	// node: its own promoted shards pass outright, and its standby
	// primary's shards pass once the rejoined follower's ack is at head.
	caughtUp := func(sh replica.ShardReplStats) bool {
		if sh.Promoted {
			return true
		}
		for _, f := range sh.Followers {
			if f.AckSeq == sh.HeadSeq {
				return true
			}
		}
		return false
	}

	cur, other := na, nb
	lastEpoch := daemonStats(t, na.d.url).Replication.Epoch
	next := 0
	for cycle := 0; cycle < cycles; cycle++ {
		// Gated writes against the current primary; each ack means the
		// record reached the other node before the coming kill.
		curCl := client.New(cur.d.url)
		for k := 0; k < 3; k++ {
			if _, err := curCl.PutRun(ctx, record(next)); err != nil {
				t.Fatalf("cycle %d: gated write %d refused: %v", cycle, next, err)
			}
			next++
		}
		cur.d.kill(t)
		killedTime := time.Now()

		// The survivor must self-promote and accept the next write within
		// three lease TTLs — no promote call, ever.
		otherCl := client.New(other.d.url)
		putUntilWritable(t, ctx, otherCl, record(next), killedTime.Add(3*autoLeaseTTL),
			fmt.Sprintf("cycle %d failover", cycle))
		next++
		stats := daemonStats(t, other.d.url).Replication
		if stats == nil || stats.Role != "primary" {
			t.Fatalf("cycle %d: survivor accepted a write without the primary role: %+v", cycle, stats)
		}
		if stats.Epoch <= lastEpoch {
			t.Fatalf("cycle %d: epoch not monotone across handover: %d -> %d", cycle, lastEpoch, stats.Epoch)
		}
		lastEpoch = stats.Epoch

		// Zero acked-write loss: everything acknowledged so far is on the
		// survivor byte-identically.
		for i := 0; i < next; i++ {
			rec := record(i)
			wantRec, err := server.MarshalCanonical(rec)
			if err != nil {
				t.Fatal(err)
			}
			got, err := otherCl.GetRun(ctx, "poisson", rec.Version+":"+rec.RunID)
			if err != nil {
				t.Fatalf("cycle %d: acked write %s lost across handover: %v", cycle, rec.RunID, err)
			}
			if data, _ := server.MarshalCanonical(got); !bytes.Equal(data, wantRec) {
				t.Fatalf("cycle %d: record %s differs from its acked bytes", cycle, rec.RunID)
			}
		}
		// The rest of the cycle's load lands on the new primary.
		for k := 0; k < 4; k++ {
			if _, err := otherCl.PutRun(ctx, record(next)); err != nil {
				t.Fatalf("cycle %d: post-failover write %d refused: %v", cycle, next, err)
			}
			next++
		}

		// Revive the corpse on its original port. The rejoin handshake
		// must demote it, the typed fencing error must refuse its writes
		// (exactly one writable node), and it must catch back up before
		// the next handover makes it the primary again.
		cur.d = startAutoDaemon(t, bin,
			"-store", cur.store, "-addr", cur.addr,
			"-replicas", "1", "-auto-failover",
			"-lease-ttl", ttl, "-advertise", cur.url)
		zCl := client.New(cur.d.url)
		if err := zCl.WaitHealthy(ctx); err != nil {
			t.Fatal(err)
		}
		zrec := record(0)
		zrec.RunID = fmt.Sprintf("flap-zombie-%d", cycle)
		_, zerr := zCl.PutRun(ctx, zrec)
		if zerr == nil {
			t.Fatalf("cycle %d: revived node accepted a write: two writable primaries", cycle)
		}
		if !errors.Is(zerr, client.ErrFenced) {
			t.Fatalf("cycle %d: zombie write refused with %v, want errors.Is ErrFenced", cycle, zerr)
		}
		waitReplication(t, other.d.url, fmt.Sprintf("cycle %d: rejoined node caught up", cycle), caughtUp)
		cur, other = other, cur
	}

	// Full workload landed across three handovers: both the final
	// primary and the rejoined follower must answer byte-identically to
	// the never-faulted reference.
	if next != total {
		t.Fatalf("harness accounting: landed %d of %d records", next, total)
	}
	for _, n := range []*fnode{cur, other} {
		got, err := client.New(n.d.url).QueryRaw(ctx, client.QueryParams{App: "poisson"})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("query results on %s differ from the unfaulted run after flapping:\n got: %s\nwant: %s", n.url, got, want)
		}
	}

	// Drain clean and verify: SIGKILLs and divergence quarantines leave
	// at worst residue (grade 1); corruption or live-keyspace divergence
	// fails. other is the rejoined follower of cur, the final primary.
	other.d.stop(t)
	cur.d.stop(t)
	if code, out := fsck(t, bin, cur.store, false); code == 2 {
		t.Fatalf("pcfsck grades the final primary store corrupt:\n%s", out)
	}
	if code, out := fsck(t, bin, other.store, false); code == 2 {
		t.Fatalf("pcfsck grades the rejoined follower store corrupt:\n%s", out)
	}
	if code, out := fsckReplica(t, bin, other.store, cur.store); code == 2 {
		t.Fatalf("cross-replica verification found divergence after flapping:\n%s", out)
	}
}
